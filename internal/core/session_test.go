package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specglobe/internal/solver"
	"specglobe/internal/stations"
)

// secondEvent is a shallower event at a different epicenter so two
// scenarios genuinely differ in source position and mechanism.
var secondEvent = Event{
	Name: "second-event", LatDeg: 12.0, LonDeg: 40.0, DepthM: 80e3,
	Mrr: -0.4e20, Mtt: 1e20, Mpp: -0.6e20, Mtp: 0.2e20,
	HalfDurationSec: 15,
}

// sameSeismos requires bit-identical (==) seismograms per station.
func sameSeismos(t *testing.T, tag string, want, got map[string]*solver.Seismogram) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d seismograms", tag, len(want), len(got))
	}
	for name, w := range want {
		g := got[name]
		if g == nil {
			t.Fatalf("%s: station %s missing", tag, name)
		}
		if len(w.X) != len(g.X) {
			t.Fatalf("%s/%s: %d vs %d samples", tag, name, len(w.X), len(g.X))
		}
		signal := false
		for i := range w.X {
			if w.X[i] != g.X[i] || w.Y[i] != g.Y[i] || w.Z[i] != g.Z[i] {
				t.Fatalf("%s/%s: sample %d differs: (%g,%g,%g) vs (%g,%g,%g)",
					tag, name, i, w.X[i], w.Y[i], w.Z[i], g.X[i], g.Y[i], g.Z[i])
			}
			if w.X[i] != 0 || w.Y[i] != 0 || w.Z[i] != 0 {
				signal = true
			}
		}
		if !signal {
			t.Fatalf("%s/%s: no signal — the identity check is vacuous", tag, name)
		}
	}
}

// Session reuse must leak no wavefield state across runs: two
// sequential Session.Run calls with different sources produce
// seismograms bit-identical to two fresh core.Run calls. Both the
// plain and the doubled globe (whose mesh carries the multi-rate
// doubling structure) are covered.
func TestSessionReuseMatchesFreshRuns(t *testing.T) {
	cases := []struct {
		name      string
		doublings []float64
	}{
		{"plain-globe", nil},
		{"doubled-globe", []float64{5200e3, 3000e3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{
				NexXi: 4, NProcXi: 1,
				Model:     smallModel(),
				Doublings: c.doublings,
				Steps:     20,
				Stations:  stations.ReferenceStations()[:2],
			}
			if c.doublings != nil {
				cfg.NexXi = 8
				cfg.Steps = 10
			}
			s, err := NewSession(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sts := cfg.Stations
			rep1, err := s.Run(Scenario{Name: "a", Event: testEvent, Stations: sts})
			if err != nil {
				t.Fatal(err)
			}
			rep2, err := s.Run(Scenario{Name: "b", Event: secondEvent, Stations: sts})
			if err != nil {
				t.Fatal(err)
			}

			cfg1 := cfg
			cfg1.Event = testEvent
			fresh1, err := Run(cfg1)
			if err != nil {
				t.Fatal(err)
			}
			cfg2 := cfg
			cfg2.Event = secondEvent
			fresh2, err := Run(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			sameSeismos(t, "first-run", fresh1.Result.Seismograms, rep1.Result.Seismograms)
			sameSeismos(t, "second-run", fresh2.Result.Seismograms, rep2.Result.Seismograms)
			if rep2.MesherTime != rep1.MesherTime {
				t.Error("session reports should share the one-time mesher cost")
			}
		})
	}
}

// RunBatch propagates each scenario's source through its own ensemble
// field of ONE solver run; each scenario's view must be bit-identical
// to running it alone, and stations not in a scenario's set must not
// appear in its view.
func TestSessionRunBatchMatchesSingleRuns(t *testing.T) {
	cfg := Config{
		NexXi: 4, NProcXi: 1,
		Model: smallModel(),
		Steps: 20,
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := stations.ReferenceStations()[:3]
	scs := []Scenario{
		{Name: "a", Event: testEvent, Stations: all[:2]},
		{Name: "b", Event: secondEvent, Stations: all[1:]},
	}
	reps, err := s.RunBatch(scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("%d reports, want 2", len(reps))
	}
	if reps[0].Result.NumFields != 2 {
		t.Errorf("NumFields = %d, want 2", reps[0].Result.NumFields)
	}
	for i, sc := range scs {
		single, err := s.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		sameSeismos(t, "batch-"+sc.Name, single.Result.Seismograms, reps[i].Result.Seismograms)
		if len(reps[i].Result.Seismograms) != len(sc.Stations) {
			t.Errorf("scenario %s: %d seismograms, want %d",
				sc.Name, len(reps[i].Result.Seismograms), len(sc.Stations))
		}
	}
	// Station outside scenario a's set must not leak into its view.
	if _, ok := reps[0].Result.Seismograms[all[2].Name]; ok {
		t.Errorf("station %s leaked into scenario a's view", all[2].Name)
	}
}

// Batched output is keyed by (source, station): one source_NNN
// subdirectory per field, with each subdirectory's files matching a
// flat single-source write sample for sample. Single-source results
// must keep the flat layout.
func TestWriteSeismogramsBatch(t *testing.T) {
	cfg := Config{
		NexXi: 4, NProcXi: 1,
		Model: smallModel(),
		Steps: 10,
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sts := stations.ReferenceStations()[:2]
	scs := []Scenario{
		{Name: "a", Event: testEvent, Stations: sts},
		{Name: "b", Event: secondEvent, Stations: sts},
	}
	reps, err := s.RunBatch(scs)
	if err != nil {
		t.Fatal(err)
	}
	// The batched result (both fields) goes under per-source subdirs.
	dir := t.TempDir()
	if err := WriteSeismograms(dir, reps[0].Result); err != nil {
		t.Fatal(err)
	}
	for fi := range scs {
		sub := filepath.Join(dir, "source_00"+string(rune('0'+fi)))
		for _, st := range sts {
			data, err := os.ReadFile(filepath.Join(sub, st.Name+".sem"))
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(string(data)), "\n")
			if len(lines) != cfg.Steps {
				t.Errorf("source %d station %s: %d samples, want %d", fi, st.Name, len(lines), cfg.Steps)
			}
		}
	}
	// Each subdirectory matches the flat write of its single-source run.
	for fi, sc := range scs {
		single, err := s.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		flat := t.TempDir()
		if err := WriteSeismograms(flat, single.Result); err != nil {
			t.Fatal(err)
		}
		for _, st := range sts {
			want, err := os.ReadFile(filepath.Join(flat, st.Name+".sem"))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(dir, "source_00"+string(rune('0'+fi)), st.Name+".sem"))
			if err != nil {
				t.Fatal(err)
			}
			if string(want) != string(got) {
				t.Errorf("source %d station %s: batched file differs from single-source write", fi, st.Name)
			}
		}
		// Single-source results stay flat: no source_000 subdirectory.
		if _, err := os.Stat(filepath.Join(flat, "source_000")); !os.IsNotExist(err) {
			t.Error("single-source write created a per-source subdirectory")
		}
	}
}
