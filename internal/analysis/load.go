package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages from GOPATH-style source
// roots: an import path P resolves to <root>/P/*.go. It backs the
// fixture tests (root = testdata/src) — the production vettool path in
// cmd/specfemvet instead receives compiled export data from the go
// command and does not use this loader. Imports not found under any
// root fall back to the standard library via the source importer.
type Loader struct {
	Fset  *token.FileSet
	roots []string

	pkgs     map[string]*Package
	imported map[string]*types.Package
	loading  map[string]bool
	std      types.Importer
}

// NewLoader returns a loader over the given source roots.
func NewLoader(roots ...string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		roots:    roots,
		pkgs:     map[string]*Package{},
		imported: map[string]*types.Package{},
		loading:  map[string]bool{},
		std:      importer.ForCompiler(fset, "source", nil),
	}
}

// dirFor locates the directory holding import path, or "".
func (l *Loader) dirFor(path string) string {
	for _, r := range l.roots {
		dir := filepath.Join(r, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			if ents, err := os.ReadDir(dir); err == nil {
				for _, e := range ents {
					if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
						return dir
					}
				}
			}
		}
	}
	return ""
}

// Import implements types.Importer over the loader's roots.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.imported[path]; ok {
		return p, nil
	}
	if l.dirFor(path) == "" {
		return l.std.Import(path)
	}
	pkg, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// Load parses and type-checks the package at import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("package %q not found under %v", path, l.roots)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	l.imported[path] = tpkg
	return p, nil
}

// NewInfo allocates the full set of type-checker fact maps the
// analyzers consume. Exported for cmd/specfemvet, whose unitchecker
// mode type-checks from the go command's compiled export data instead
// of this loader.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
