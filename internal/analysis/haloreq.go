package analysis

import (
	"go/ast"
	"go/types"
)

// HaloReq enforces the PR 1 halo-exchange invariant: every request
// returned by a non-blocking mpi Irecv must reach completion — Wait,
// Test, or Waitall — or escape to a caller who will complete it. A
// request that is dropped on some path is a deadlock at scale (the peer
// eventually blocks in its own Wait) and silently corrupts the
// hidden-vs-exposed overlap accounting, because the virtual transfer
// cost is only charged at completion.
var HaloReq = &Analyzer{
	Name:   "haloreq",
	Pragma: "nohaloreq",
	Doc: "check that every mpi.Irecv request reaches Wait/Test/Waitall " +
		"or escapes to the caller (halo pairing, PR 1); see " +
		"DESIGN.md#invariants-as-analyzers",
	Run: runHaloReq,
}

func runHaloReq(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkHaloReqs(pass, fd)
		}
	}
	return nil
}

// checkHaloReqs analyzes one function body (closures included — a
// request created in a closure is the closure's responsibility, but
// uses anywhere in the enclosing declaration count, since closures and
// their host share the variables).
func checkHaloReqs(pass *Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pass.TypesInfo, call)
		if callee == nil || callee.Name() != "Irecv" || !funcFromPkg(callee, "mpi") {
			return true
		}
		switch parent := parentSkipParens(parents, call).(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(),
				"result of Irecv is discarded: the request never reaches Wait/Test/Waitall (leaked halo receive)")
		case *ast.AssignStmt:
			obj := assignTarget(pass.TypesInfo, parent, call)
			if obj == blankTarget {
				pass.Reportf(call.Pos(),
					"result of Irecv is assigned to _: the request never reaches Wait/Test/Waitall (leaked halo receive)")
				return true
			}
			v, ok := obj.(*types.Var)
			if !ok {
				return true // non-ident destination: escapes, assumed completed elsewhere
			}
			if !requestCompleted(pass.TypesInfo, fd, parents, v) {
				pass.Reportf(call.Pos(),
					"request %s from Irecv never reaches Wait, Test, or Waitall in this function and does not escape", v.Name())
			}
		default:
			// Direct use as an argument, return value, composite-literal
			// element, channel send, ...: the request escapes into a
			// structure whose owner completes it.
		}
		return true
	})
}

// blankTarget marks assignment to the blank identifier.
var blankTarget = types.Object(types.NewLabel(0, nil, "_blank"))

// assignTarget finds the object the call's value lands in, blankTarget
// for _, or nil when the destination is not a plain identifier.
func assignTarget(info *types.Info, as *ast.AssignStmt, call *ast.CallExpr) types.Object {
	if len(as.Lhs) != len(as.Rhs) {
		return nil // multi-value form; Irecv is single-valued, cannot occur
	}
	for i, rhs := range as.Rhs {
		if unparen(rhs) != call {
			continue
		}
		id, ok := unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			return nil
		}
		if id.Name == "_" {
			return blankTarget
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return nil
}

// requestCompleted reports whether the request variable (or any local
// alias of it) has at least one completing use in the declaration:
// a .Wait/.Test call or method value, use as a call argument (Waitall,
// append into a pending slice), storage into a structure, a return, or
// a channel send. This is a may-analysis, not a control-flow proof: a
// request completed only on some branches still counts. The value of
// the check is the common failure shape — a posted receive whose
// handle no code path ever touches again.
func requestCompleted(info *types.Info, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, v *types.Var) bool {
	group := map[types.Object]bool{v: true}
	for {
		completed, grew := scanRequestUses(info, fd, parents, group)
		if completed {
			return true
		}
		if !grew {
			return false
		}
	}
}

func scanRequestUses(info *types.Info, fd *ast.FuncDecl, parents map[ast.Node]ast.Node, group map[types.Object]bool) (completed, grew bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if completed {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !group[obj] {
			return true
		}
		switch parent := parentSkipParens(parents, id).(type) {
		case *ast.SelectorExpr:
			if parent.X == id && (parent.Sel.Name == "Wait" || parent.Sel.Name == "Test") {
				completed = true
			}
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if unparen(arg) == id {
					completed = true // Waitall(reqs), append(pending, req), helper(req)
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.UnaryExpr:
			completed = true // escapes to the caller / a structure
		case *ast.IndexExpr:
			if parent.Index == id {
				return true
			}
			completed = true // reqs[i] store or read-through: escapes
		case *ast.AssignStmt:
			// On the right-hand side: the request flows into another
			// variable; track it too. On the left: overwrite, not a use.
			for i, rhs := range parent.Rhs {
				if unparen(rhs) != id || len(parent.Lhs) != len(parent.Rhs) {
					continue
				}
				lhs := unparen(parent.Lhs[i])
				lid, ok := lhs.(*ast.Ident)
				if !ok {
					completed = true // stored into a field/slot: escapes
					continue
				}
				var dst types.Object
				if dst = info.Defs[lid]; dst == nil {
					dst = info.Uses[lid]
				}
				if dst != nil && !group[dst] {
					group[dst] = true
					grew = true
				}
			}
		}
		return true
	})
	return completed, grew
}
