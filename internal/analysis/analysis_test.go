package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: each fixture
// package under testdata/src carries `// want "regexp"` comments on the
// lines where diagnostics are expected (several regexps on one line for
// several diagnostics), and a run must produce exactly the expected
// set — nothing missing, nothing extra.

var wantRE = regexp.MustCompile(`^(?://|/\*)\s*want\s+(.*?)\s*(?:\*/)?$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants extracts the expectations of a loaded package.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quotes := quotedRE.FindAllString(m[1], -1)
				if len(quotes) == 0 {
					t.Fatalf("%s: want comment with no quoted regexp", pos)
				}
				for _, q := range quotes {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// runFixtures checks one analyzer against fixture packages: every
// diagnostic must match a want expectation on its line, and every
// expectation must be hit.
func runFixtures(t *testing.T, a *Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := NewLoader(filepath.Join("testdata", "src"))
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		exps := collectWants(t, pkg)
		diags, err := Run(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		for _, d := range diags {
			found := false
			for _, e := range exps {
				if e.file == d.Pos.Filename && e.line == d.Pos.Line && e.re.MatchString(d.Message) {
					e.matched = true
					found = true
				}
			}
			if !found {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
			}
		}
	}
}

func TestHaloReqFixtures(t *testing.T) {
	runFixtures(t, HaloReq, "haloreq/bad", "haloreq/good")
}

func TestFlopAuditFixtures(t *testing.T) {
	runFixtures(t, FlopAudit,
		"flopaudit/bad/solver", "flopaudit/bad/simd",
		"flopaudit/good/solver", "flopaudit/good/simd")
}

func TestDeterminismFixtures(t *testing.T) {
	runFixtures(t, Determinism,
		"determinism/bad/mesh", "determinism/good/mesh", "determinism/good/other")
}

func TestPoolSafetyFixtures(t *testing.T) {
	runFixtures(t, PoolSafety, "poolsafety/bad/solver", "poolsafety/good/solver")
}

func TestPhasePairFixtures(t *testing.T) {
	runFixtures(t, PhasePair, "phasepair/bad", "phasepair/good")
}

// fixturePackages lists the fixture package import paths under
// testdata/src/<root> (directories holding at least one .go file).
func fixturePackages(t *testing.T, root string) []string {
	t.Helper()
	base := filepath.Join("testdata", "src")
	var out []string
	err := filepath.WalkDir(filepath.Join(base, root), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(base, filepath.Dir(path))
		if err != nil {
			return err
		}
		p := filepath.ToSlash(rel)
		for _, have := range out {
			if have == p {
				return nil
			}
		}
		out = append(out, p)
		return nil
	})
	if err != nil {
		t.Fatalf("walking fixtures of %s: %v", root, err)
	}
	return out
}

// TestAnalyzerContract is the meta test: every registered analyzer has
// a unique name and pragma kind, a Doc naming an anchor that exists in
// DESIGN.md, at least one positive (bad) fixture that fires and at
// least one negative (good) fixture tree that stays silent.
func TestAnalyzerContract(t *testing.T) {
	anchors := designAnchors(t)
	names := map[string]bool{}
	pragmas := map[string]bool{}
	docAnchorRE := regexp.MustCompile(`DESIGN\.md#([a-z0-9-]+)`)

	for _, a := range All() {
		if a.Name == "" || names[a.Name] {
			t.Errorf("analyzer name %q missing or duplicated", a.Name)
		}
		names[a.Name] = true
		if a.Pragma == "" || pragmas[a.Pragma] {
			t.Errorf("%s: pragma kind %q missing or duplicated", a.Name, a.Pragma)
		}
		pragmas[a.Pragma] = true

		m := docAnchorRE.FindStringSubmatch(a.Doc)
		if m == nil {
			t.Errorf("%s: Doc does not name a DESIGN.md anchor", a.Name)
		} else if !anchors[m[1]] {
			t.Errorf("%s: Doc anchor %q not found among DESIGN.md headings", a.Name, m[1])
		}

		loader := NewLoader(filepath.Join("testdata", "src"))
		for _, polarity := range []string{"bad", "good"} {
			pkgs := fixturePackages(t, a.Name+"/"+polarity)
			if len(pkgs) == 0 {
				t.Errorf("%s: no %s fixtures under testdata/src/%s/%s", a.Name, polarity, a.Name, polarity)
				continue
			}
			total := 0
			for _, path := range pkgs {
				pkg, err := loader.Load(path)
				if err != nil {
					t.Fatalf("%s: loading %s: %v", a.Name, path, err)
				}
				diags, err := Run(pkg, []*Analyzer{a})
				if err != nil {
					t.Fatalf("%s: running on %s: %v", a.Name, path, err)
				}
				total += len(diags)
			}
			if polarity == "bad" && total == 0 {
				t.Errorf("%s: bad fixtures produced no diagnostics", a.Name)
			}
			if polarity == "good" && total != 0 {
				t.Errorf("%s: good fixtures produced %d diagnostics, want 0", a.Name, total)
			}
		}
	}
}

// designAnchors returns the GitHub-style slugs of every DESIGN.md
// heading.
func designAnchors(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		title := strings.TrimSpace(strings.TrimLeft(line, "#"))
		out[slugify(title)] = true
	}
	return out
}

// slugify approximates GitHub's heading-anchor rule: lowercase, spaces
// to dashes, everything but letters, digits and dashes dropped.
func slugify(title string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

// TestBarePragmaRejected pins the framework rule directly: a reasoned
// pragma suppresses, a bare pragma is itself a diagnostic and cannot
// suppress anything.
func TestBarePragmaRejected(t *testing.T) {
	loader := NewLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("haloreq/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{HaloReq})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "requires a non-empty reason") {
			found = true
		}
	}
	if !found {
		t.Errorf("bare //specfem:nohaloreq pragma was not reported; diagnostics: %v", diags)
	}
}

// TestDiagnosticFormat pins the vet-style rendering cmd/specfemvet
// prints: file:line:col, message, analyzer name.
func TestDiagnosticFormat(t *testing.T) {
	loader := NewLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("haloreq/bad")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{HaloReq})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("expected diagnostics from haloreq/bad")
	}
	got := diags[0].String()
	wantSuffix := "(haloreq)"
	if !strings.HasSuffix(got, wantSuffix) {
		t.Errorf("diagnostic %q does not end with %q", got, wantSuffix)
	}
	if !strings.Contains(got, fmt.Sprintf("bad.go:%d:", diags[0].Pos.Line)) {
		t.Errorf("diagnostic %q does not carry file:line position", got)
	}
}
