package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism is the mechanical half of the PR 2/PR 8 bit-identity
// guarantee: every rank must execute an identical schedule, so in the
// solver, mesh, simd, meshfem and service packages
//
//   - ranging over a map may not feed floating-point arithmetic,
//     formatted output, channel sends, or message posts — Go randomizes
//     map iteration order, so any order-sensitive consumer diverges
//     between runs (collect the keys and sort them first);
//   - wall-clock reads (time.Now/Since) and math/rand have no business
//     in mesh construction or the stepped solver loop — timing belongs
//     to the perf layer and the bench harness.
//
// Intentional uses (the worker pool's busy-time attribution, which
// feeds reporting but never a wavefield) carry //specfem:nodeterminism
// with a reason.
var Determinism = &Analyzer{
	Name:   "determinism",
	Pragma: "nodeterminism",
	Doc: "check bit-identity hygiene in solver/mesh/simd/meshfem/service: " +
		"no map-order-dependent accumulation or output, no wall clock or " +
		"math/rand (PR 2/PR 8); see DESIGN.md#invariants-as-analyzers",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !pass.scopedTo("solver", "mesh", "simd", "meshfem", "service") {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if t := info.TypeOf(x.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRangeBody(pass, x)
					}
				}
			case *ast.Ident:
				checkNondetUse(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkMapRangeBody flags order-sensitive work inside a map-range body.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op.String() {
			case "+", "-", "*", "/":
				if isFloat(info.TypeOf(x.X)) || isFloat(info.TypeOf(x.Y)) {
					pass.Reportf(rng.For,
						"map iteration feeds floating-point arithmetic: map order is randomized, so the accumulated result is not bit-stable — iterate sorted keys instead")
					return false
				}
			}
		case *ast.AssignStmt:
			switch x.Tok.String() {
			case "+=", "-=", "*=", "/=":
				if len(x.Lhs) == 1 && isFloat(info.TypeOf(x.Lhs[0])) {
					pass.Reportf(rng.For,
						"map iteration feeds floating-point accumulation: map order is randomized, so the result is not bit-stable — iterate sorted keys instead")
					return false
				}
			}
		case *ast.SendStmt:
			pass.Reportf(rng.For,
				"map iteration drives a channel send: delivery order is randomized across runs — iterate sorted keys instead")
			return false
		case *ast.CallExpr:
			if callee := calleeOf(info, x); callee != nil {
				if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
					pass.Reportf(rng.For,
						"map iteration drives fmt output: line order is randomized across runs — iterate sorted keys instead")
					return false
				}
				if funcFromPkg(callee, "mpi") && (callee.Name() == "Isend" || callee.Name() == "Send") {
					pass.Reportf(rng.For,
						"map iteration posts mpi sends: message order is randomized across runs — iterate sorted keys instead")
					return false
				}
			}
		}
		return true
	})
}

// checkNondetUse flags wall-clock and PRNG references.
func checkNondetUse(pass *Pass, id *ast.Ident) {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if f, ok := obj.(*types.Func); ok && (f.Name() == "Now" || f.Name() == "Since") {
			pass.Reportf(id.Pos(),
				"wall-clock read (time.%s) in a bit-identity package: timing belongs to the perf layer; annotate //specfem:nodeterminism <reason> if this never feeds solver state", f.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(id.Pos(),
			"math/rand use in a bit-identity package: randomness breaks run-to-run reproducibility; annotate //specfem:nodeterminism <reason> if this never feeds solver state")
	}
}
