package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PhasePair keeps the perf profiler's phase attribution honest — the
// accounting the paper-style CommFraction and per-phase roofline
// numbers are built from:
//
//   - a Profiler.Start must be paired with a Stop in the same function
//     (deferred or direct), or the whole run's busy-time denominator is
//     garbage;
//   - a Time(phase, f) section must not reach flop/byte accounting for
//     a *different* constant phase — neither lexically inside the
//     closure nor through the same-package functions it calls — or the
//     per-phase arithmetic intensity silently mixes phases;
//   - AddFlops/AddBytes must sit next to accounted work: the enclosing
//     function must contain a Time section, a pool sweep dispatch
//     (whose busy time the rank charges to a phase), or the
//     floating-point loop being counted. A flop add with none of those
//     is accounting for work that happens somewhere else — the drift
//     PR 4 hunted by hand.
var PhasePair = &Analyzer{
	Name:   "phasepair",
	Pragma: "nophasepair",
	Doc: "check perf phase hygiene: Start/Stop pairing, Time(phase) " +
		"sections only reach matching-phase AddFlops/AddBytes, and " +
		"flop/byte adds accompany accounted work (PR 4); see " +
		"DESIGN.md#invariants-as-analyzers",
	Run: runPhasePair,
}

func runPhasePair(pass *Pass) error {
	decls := declIndex(pass)
	graph := callGraph(pass, decls)

	// Per-declaration constant phases charged by lexical AddFlops/
	// AddBytes calls, then closed transitively over the call graph.
	lexical := map[*types.Func]map[string]phaseSite{}
	for obj, fd := range decls {
		lexical[obj] = addPhases(pass, fd.Body)
	}
	closure := map[*types.Func]map[string]phaseSite{}
	var close func(obj *types.Func, seen map[*types.Func]bool) map[string]phaseSite
	close = func(obj *types.Func, seen map[*types.Func]bool) map[string]phaseSite {
		if got, ok := closure[obj]; ok {
			return got
		}
		if seen[obj] {
			return lexical[obj]
		}
		seen[obj] = true
		out := map[string]phaseSite{}
		for v, t := range lexical[obj] {
			out[v] = t
		}
		for _, callee := range graph[obj] {
			for v, t := range close(callee, seen) {
				if _, ok := out[v]; !ok {
					out[v] = t
				}
			}
		}
		closure[obj] = out
		return out
	}

	for obj, fd := range decls {
		checkStartStop(pass, fd)
		checkAddContext(pass, fd)
		// Time-section phase agreement.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil || callee.Name() != "Time" || !funcFromPkg(callee, "perf") || len(call.Args) != 2 {
				return true
			}
			phase, phaseName, ok := perfPhaseConst(pass.TypesInfo, call.Args[0])
			if !ok {
				return true
			}
			lit, ok := unparen(call.Args[1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			reached := addPhases(pass, lit.Body)
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if c2 := calleeOf(pass.TypesInfo, inner); c2 != nil {
					if _, local := decls[c2]; local {
						for v, t := range close(c2, map[*types.Func]bool{obj: true}) {
							if _, have := reached[v]; !have {
								reached[v] = t
							}
						}
					}
				}
				return true
			})
			for v, t := range reached {
				if v != phase {
					pass.Reportf(call.Pos(),
						"Time(%s) section reaches AddFlops/AddBytes for phase %s (at %s): per-phase time and flop attribution diverge", phaseName, t.name, pass.Fset.Position(t.pos))
				}
			}
			return true
		})
	}
	return nil
}

// phaseSite records where a phase constant was charged and under what
// name.
type phaseSite struct {
	name string
	pos  token.Pos
}

// addPhases collects the constant phases of lexical AddFlops/AddBytes
// calls under n.
func addPhases(pass *Pass, n ast.Node) map[string]phaseSite {
	out := map[string]phaseSite{}
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPerfAdd(pass.TypesInfo, call) || len(call.Args) != 2 {
			return true
		}
		if v, name, ok := perfPhaseConst(pass.TypesInfo, call.Args[0]); ok {
			if _, have := out[v]; !have {
				out[v] = phaseSite{name: name, pos: call.Pos()}
			}
		}
		return true
	})
	return out
}

// checkStartStop flags a Profiler.Start with no Stop in the same
// declaration.
func checkStartStop(pass *Pass, fd *ast.FuncDecl) {
	var startPos token.Pos
	hasStart, hasStop := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pass.TypesInfo, call)
		if callee == nil || !funcFromPkg(callee, "perf") || recvTypeName(callee) != "Profiler" {
			return true
		}
		switch callee.Name() {
		case "Start":
			if !hasStart {
				hasStart, startPos = true, call.Pos()
			}
		case "Stop":
			hasStop = true
		}
		return true
	})
	if hasStart && !hasStop {
		pass.Reportf(startPos,
			"Profiler.Start without a matching Stop in this function: the accounted section never closes and busy-time fractions are meaningless")
	}
}

// checkAddContext flags AddFlops/AddBytes in functions with no
// accounted work in scope.
func checkAddContext(pass *Pass, fd *ast.FuncDecl) {
	var adds []*ast.CallExpr
	hasWork := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPerfAdd(pass.TypesInfo, call) {
			adds = append(adds, call)
			return true
		}
		if callee := calleeOf(pass.TypesInfo, call); callee != nil {
			if callee.Name() == "Time" && funcFromPkg(callee, "perf") {
				hasWork = true
			}
			if poolSweepNames[callee.Name()] && recvTypeName(callee) == "pool" {
				hasWork = true
			}
		}
		return true
	})
	if len(adds) == 0 || hasWork {
		return
	}
	if hasFloatLoop(pass.TypesInfo, fd.Body) {
		return
	}
	for _, call := range adds {
		pass.Reportf(call.Pos(),
			"flop/byte accounting with no accounted work in this function (no Time section, pool sweep, or floating-point loop): charge the phase where the work is dispatched")
	}
}
