package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PoolSafety enforces the PR 2 worker-pool conventions that carry the
// bit-identity and race-freedom guarantees of the parallel force
// kernels:
//
//   - inside a chunk closure handed to pool.sweep/sweepElems/sweepRange,
//     writes that reach shared (captured) slices must be indexed through
//     values derived from the chunk's own arguments — its element
//     sub-list (one coloring class) or its [lo,hi) point range — so two
//     concurrent chunks can never touch the same entry;
//   - plain captured variables may not be written from a chunk at all;
//   - the per-worker kernelScratch handed to the chunk must not escape
//     into captured state — scratch contents are worker-private and
//     stale between sweeps.
//
// The derivation rules are a local taint analysis, propagated one call
// layer at a time into same-package helpers that receive the chunk's
// arguments (the *ForcesChunk methods). Reads are unrestricted: the
// coloring invariant (mesh.BuildColoring) guarantees same-color
// elements share no Ibool point, which is exactly why a write indexed
// through the chunk's own elements is safe.
var PoolSafety = &Analyzer{
	Name:   "poolsafety",
	Pragma: "nopoolsafety",
	Doc: "check pool chunk closures in the solver: shared-slice writes " +
		"indexed by the chunk's own range/coloring class only, no captured-" +
		"variable writes, no kernelScratch escape (PR 2); see " +
		"DESIGN.md#invariants-as-analyzers",
	Run: runPoolSafety,
}

var poolSweepNames = map[string]bool{"sweep": true, "sweepElems": true, "sweepRange": true}

func runPoolSafety(pass *Pass) error {
	if !pass.scopedTo("solver") {
		return nil
	}
	ps := &poolState{
		pass:  pass,
		decls: declIndex(pass),
		memo:  map[string]bool{},
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil || !poolSweepNames[callee.Name()] || recvTypeName(callee) != "pool" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			ps.analyzeChunk(lit)
			return true
		})
	}
	return nil
}

type poolState struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	memo  map[string]bool // decl ptr + param-kind signature already analyzed
}

// kind classifies how a value relates to the chunk.
type kind int

const (
	kindShared  kind = iota // captured or derived from captured state
	kindSafe                // derived from the chunk's own arguments
	kindScratch             // the worker's kernelScratch or an alias into it
	kindFresh               // allocated inside the analyzed body
)

// ctx is one body under analysis: a chunk closure or a helper reached
// from one.
type ctx struct {
	ps    *poolState
	root  ast.Node // FuncLit or FuncDecl: declarations inside are local
	body  *ast.BlockStmt
	kinds map[types.Object]kind // params and classified locals
	depth int
}

// analyzeChunk analyzes a closure literal passed to a pool sweep. Its
// parameters are the chunk's own arguments: kernelScratch parameters
// are the worker's scratch, everything else (element sub-list, lo/hi
// bounds) is chunk-derived and safe to index writes with.
func (ps *poolState) analyzeChunk(lit *ast.FuncLit) {
	c := &ctx{ps: ps, root: lit, body: lit.Body, kinds: map[types.Object]kind{}}
	for _, field := range lit.Type.Params.List {
		k := kindSafe
		if isKernelScratch(ps.pass.TypesInfo, field.Type) {
			k = kindScratch
		}
		for _, name := range field.Names {
			if obj := ps.pass.TypesInfo.Defs[name]; obj != nil {
				c.kinds[obj] = k
			}
		}
	}
	c.run()
}

// isKernelScratch matches *kernelScratch (or kernelScratch) parameters.
func isKernelScratch(info *types.Info, typ ast.Expr) bool {
	t := info.TypeOf(typ)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "kernelScratch"
}

func (c *ctx) run() {
	c.classifyLocals()
	c.checkWrites()
	c.propagateCalls()
}

func (c *ctx) obj(id *ast.Ident) types.Object {
	info := c.ps.pass.TypesInfo
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// localTo reports whether the object is declared within the analyzed
// node (parameters and receiver included for declarations).
func (c *ctx) localTo(o types.Object) bool {
	return o != nil && o.Pos() >= c.root.Pos() && o.Pos() <= c.root.End()
}

// classifyLocals runs the derivation fixpoint: a local is safe when
// every value assigned to it is chunk-derived, scratch when any
// assignment aliases the worker scratch, fresh when every assignment
// allocates.
func (c *ctx) classifyLocals() {
	info := c.ps.pass.TypesInfo
	// Collect assignment shapes once.
	type src struct {
		exprs   []ast.Expr // direct RHS expressions
		ranges  []ast.Expr // ranged-over expressions feeding key/value vars
		rangeIx bool       // object is a range key over a slice/array (int index)
		unknown bool       // an assignment shape we do not model
	}
	srcs := map[types.Object]*src{}
	get := func(o types.Object) *src {
		s := srcs[o]
		if s == nil {
			s = &src{}
			srcs[o] = s
		}
		return s
	}
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						if o := c.obj(id); c.localTo(o) {
							get(o).exprs = append(get(o).exprs, st.Rhs[i])
						}
					}
				}
			} else {
				for _, lhs := range st.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						if o := c.obj(id); c.localTo(o) {
							get(o).unknown = true
						}
					}
				}
			}
		case *ast.RangeStmt:
			for i, e := range []ast.Expr{st.Key, st.Value} {
				if e == nil {
					continue
				}
				if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
					if o := c.obj(id); c.localTo(o) {
						s := get(o)
						s.ranges = append(s.ranges, st.X)
						if i == 0 {
							if t := info.TypeOf(st.X); t != nil {
								switch t.Underlying().(type) {
								case *types.Slice, *types.Array, *types.Pointer:
									s.rangeIx = true
								}
							}
						}
					}
				}
			}
		}
		return true
	})
	// Fixpoint.
	for changed := true; changed; {
		changed = false
		for o, s := range srcs {
			if _, done := c.kinds[o]; done {
				continue
			}
			if s.unknown {
				continue
			}
			scratch, allSafe, allFresh := false, true, true
			for _, e := range s.exprs {
				if c.scratchExpr(e) {
					scratch = true
				}
				if !c.safeExpr(e) {
					allSafe = false
				}
				if !freshExpr(e) {
					allFresh = false
				}
			}
			for _, e := range s.ranges {
				allFresh = false
				if c.scratchExpr(e) {
					scratch = true
				}
				if !c.safeExpr(e) {
					allSafe = false
				}
			}
			switch {
			case scratch:
				c.kinds[o] = kindScratch
				changed = true
			case allSafe && (len(s.exprs)+len(s.ranges)) > 0:
				c.kinds[o] = kindSafe
				changed = true
			case allFresh && len(s.exprs) > 0:
				c.kinds[o] = kindFresh
				changed = true
			}
		}
	}
}

// freshExpr matches allocations: make/new, composite literals, and
// addresses of composite literals.
func freshExpr(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := unparen(x.Fun).(*ast.Ident); ok {
			return id.Name == "make" || id.Name == "new"
		}
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			_, ok := unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// safeExpr reports whether an expression's value is derived only from
// the chunk's own arguments and constants — the values a shared write
// may be indexed with. Reading a captured array at a safe index yields
// a safe value (elems→Ibool→global point id is the coloring-class
// path).
func (c *ctx) safeExpr(e ast.Expr) bool {
	info := c.ps.pass.TypesInfo
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true // constants, including named package-level ones
	}
	switch x := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return c.kinds[c.obj(x)] == kindSafe
	case *ast.ParenExpr:
		return c.safeExpr(x.X)
	case *ast.UnaryExpr:
		return c.safeExpr(x.X)
	case *ast.StarExpr:
		return c.safeExpr(x.X)
	case *ast.BinaryExpr:
		return c.safeExpr(x.X) && c.safeExpr(x.Y)
	case *ast.IndexExpr:
		return c.safeExpr(x.Index)
	case *ast.SliceExpr:
		for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
			if b != nil && !c.safeExpr(b) {
				return false
			}
		}
		return true
	case *ast.SelectorExpr:
		if root := rootIdent(x); root != nil {
			return c.kinds[c.obj(root)] == kindSafe
		}
		return false
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
			for _, a := range x.Args {
				if !c.safeExpr(a) {
					return false
				}
			}
			return true // conversion of safe values
		}
		if id, ok := unparen(x.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap", "min", "max":
				for _, a := range x.Args {
					if !c.safeExpr(a) {
						return false
					}
				}
				return true
			}
		}
		return false
	}
	return false
}

// scratchExpr reports whether an expression reaches the worker's
// kernelScratch: rooted, through any selector/index/address chain, at a
// scratch-kinded variable.
func (c *ctx) scratchExpr(e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	return c.kinds[c.obj(root)] == kindScratch
}

// aliasing reports whether the expression's type can carry a reference
// into scratch memory — a plain numeric value copied out of scratch
// (accel[g] += ks.t1[k]) is not an escape.
func (c *ctx) aliasing(e ast.Expr) bool {
	t := c.ps.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return true // unresolved: stay conservative
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface, *types.Array:
		return true
	case *types.Struct:
		return true // may embed slices/pointers into scratch
	}
	return false
}

// chunkVarying reports whether the expression mentions at least one
// chunk-derived variable — the property that makes concurrent chunks
// touch different memory.
func (c *ctx) chunkVarying(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if c.kinds[c.obj(id)] == kindSafe {
				found = true
			}
		}
		return true
	})
	return found
}

// checkWrites validates every assignment and inc/dec in the body, plus
// scratch-escape through stores, sends and spawned goroutines.
func (c *ctx) checkWrites() {
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				c.checkWrite(unparen(lhs))
			}
			for _, rhs := range st.Rhs {
				if c.scratchExpr(rhs) && c.aliasing(rhs) {
					for _, lhs := range st.Lhs {
						if root := rootIdent(unparen(lhs)); root != nil {
							o := c.obj(root)
							if !c.localTo(o) && c.kinds[o] == kindShared {
								c.ps.pass.Reportf(rhs.Pos(),
									"per-worker kernelScratch escapes the pool chunk into captured state: scratch is worker-private and stale between sweeps")
							}
						}
					}
				}
			}
		case *ast.IncDecStmt:
			c.checkWrite(unparen(st.X))
		case *ast.SendStmt:
			if c.scratchExpr(st.Value) && c.aliasing(st.Value) {
				c.ps.pass.Reportf(st.Value.Pos(),
					"per-worker kernelScratch escapes the pool chunk through a channel send")
			}
		case *ast.GoStmt:
			for _, a := range st.Call.Args {
				if c.scratchExpr(a) && c.aliasing(a) {
					c.ps.pass.Reportf(a.Pos(),
						"per-worker kernelScratch escapes the pool chunk into a spawned goroutine")
				}
			}
		}
		return true
	})
}

// checkWrite validates one write destination.
func (c *ctx) checkWrite(lhs ast.Expr) {
	info := c.ps.pass.TypesInfo
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		o := c.obj(id)
		if o == nil || c.localTo(o) {
			return // chunk-local variable (parameters are value copies)
		}
		if _, isVar := o.(*types.Var); isVar {
			c.ps.pass.Reportf(id.Pos(),
				"write to captured variable %s inside a pool chunk: chunks run concurrently — accumulate into chunk-indexed state instead", id.Name)
		}
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	switch c.kinds[c.obj(root)] {
	case kindScratch, kindFresh:
		return
	}
	// Writing through shared state: a concurrent map write is never
	// safe; slice writes need chunk-derived indices.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if t := info.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				c.ps.pass.Reportf(lhs.Pos(),
					"map write inside a pool chunk: map writes are unsynchronized — build per-chunk maps and merge after the sweep")
				return
			}
		}
	}
	if !c.indicesSafe(lhs) || !c.chunkVarying(lhs) {
		c.ps.pass.Reportf(lhs.Pos(),
			"write to shared state is not indexed through the chunk's own range or coloring class: concurrent chunks may collide (see pool.sweepElems)")
	}
}

// indicesSafe checks every index and slice bound along the destination
// chain.
func (c *ctx) indicesSafe(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			if !c.safeExpr(x.Index) {
				return false
			}
			e = x.X
		case *ast.SliceExpr:
			for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
				if b != nil && !c.safeExpr(b) {
					return false
				}
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return true
		}
	}
}

// propagateCalls follows the chunk's arguments into same-package
// helpers: a call f(ks, elems) makes f's parameters scratch/safe for
// one more analysis layer, so the *ForcesChunk helpers are checked
// under the same rules as the literal.
func (c *ctx) propagateCalls() {
	if c.depth >= 6 {
		return
	}
	info := c.ps.pass.TypesInfo
	ast.Inspect(c.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil {
			return true
		}
		decl, ok := c.ps.decls[callee]
		if !ok || decl.Body == nil {
			return true
		}
		kinds := map[types.Object]kind{}
		sigKey := ""
		// Receiver: scratch propagates (k.grad with k an alias into ks);
		// anything else stays shared.
		if decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && c.scratchExpr(sel.X) {
				if o := info.Defs[decl.Recv.List[0].Names[0]]; o != nil {
					kinds[o] = kindScratch
					sigKey += "R"
				}
			}
		}
		// Positional parameters (variadic tails and multi-name fields
		// handled by flattening).
		var params []*ast.Ident
		for _, field := range decl.Type.Params.List {
			params = append(params, field.Names...)
		}
		for i, p := range params {
			if i >= len(call.Args) {
				break
			}
			arg := call.Args[i]
			k := kindShared
			switch {
			case c.scratchExpr(arg):
				k = kindScratch
			case c.safeExpr(arg):
				k = kindSafe
			}
			if o := info.Defs[p]; o != nil && k != kindShared {
				kinds[o] = k
				sigKey += fmt.Sprintf("%d:%d;", i, k)
			}
		}
		if len(kinds) == 0 {
			return true // nothing chunk-derived flows in; helper is not a chunk body
		}
		memoKey := fmt.Sprintf("%p|%s", decl, sigKey)
		if c.ps.memo[memoKey] {
			return true
		}
		c.ps.memo[memoKey] = true
		sub := &ctx{ps: c.ps, root: decl, body: decl.Body, kinds: kinds, depth: c.depth + 1}
		sub.run()
		return true
	})
}
