// Package analysis is specfemvet's analyzer suite: custom static
// checks that enforce the solver invariants this repository's
// correctness rests on — halo request pairing (PR 1), bit-identity
// hygiene of the worker-pool and mesh layers (PR 2/PR 8), and the
// exhaustive flop/byte accounting PR 4 audited by hand. Each invariant
// is encoded as one Analyzer so CI fails on the *pattern* instead of
// waiting for the eventual flaky test. See DESIGN.md#invariants-as-analyzers.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API (Analyzer, Pass, positional diagnostics, testdata fixtures with
// `// want` expectations) but is implemented on the standard library
// alone: the build environment is hermetic, so the x/tools dependency
// is substituted by this ~small equivalent. Swapping the real module in
// later is a mechanical change confined to this package and
// cmd/specfemvet.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. The shape mirrors
// x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the analyzer's identifier, reported with each diagnostic.
	Name string
	// Doc describes the invariant and MUST name the DESIGN.md anchor
	// documenting it (enforced by scripts/docscheck.sh and the meta
	// test).
	Doc string
	// Pragma is the suppression pragma kind: a comment
	// `//specfem:<Pragma> <reason>` on the flagged line, the line
	// above, or in the enclosing declaration's doc comment silences the
	// analyzer there. The reason is mandatory; a bare pragma is itself
	// a diagnostic.
	Pragma string
	// Run reports the analyzer's findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Package is one loaded, type-checked package — the unit an analyzer
// pass runs over.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only; see Loader
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// pragma is one parsed //specfem:<kind> comment.
type pragma struct {
	kind   string
	reason string
	pos    token.Position
}

var pragmaRE = regexp.MustCompile(`^//specfem:([a-z]+)\s*(.*)$`)

// filePragmas extracts every //specfem: pragma of a file.
func filePragmas(fset *token.FileSet, f *ast.File) []pragma {
	var out []pragma
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := pragmaRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			out = append(out, pragma{
				kind:   m[1],
				reason: strings.TrimSpace(m[2]),
				pos:    fset.Position(c.Pos()),
			})
		}
	}
	return out
}

// suppressions indexes, per file and pragma kind, the line ranges a
// reasoned pragma covers: its own line and the next (pragma above the
// statement or trailing it), or the whole declaration when the pragma
// sits in a doc comment.
type suppressions struct {
	// cover[file][kind] is a set of covered lines.
	cover map[string]map[string]map[int]bool
	// bare are pragmas with an empty reason, reported by the analyzer
	// owning the kind.
	bare []pragma
}

func buildSuppressions(pkg *Package) *suppressions {
	s := &suppressions{cover: map[string]map[string]map[int]bool{}}
	add := func(file, kind string, from, to int) {
		byKind := s.cover[file]
		if byKind == nil {
			byKind = map[string]map[int]bool{}
			s.cover[file] = byKind
		}
		lines := byKind[kind]
		if lines == nil {
			lines = map[int]bool{}
			byKind[kind] = lines
		}
		for l := from; l <= to; l++ {
			lines[l] = true
		}
	}
	for _, f := range pkg.Files {
		for _, pr := range filePragmas(pkg.Fset, f) {
			if pr.reason == "" {
				s.bare = append(s.bare, pr)
				continue
			}
			add(pr.pos.Filename, pr.kind, pr.pos.Line, pr.pos.Line+1)
		}
		// Doc-comment pragmas cover their whole declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				m := pragmaRE.FindStringSubmatch(c.Text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					continue
				}
				from := pkg.Fset.Position(decl.Pos()).Line
				to := pkg.Fset.Position(decl.End()).Line
				add(pkg.Fset.Position(c.Pos()).Filename, m[1], from, to)
			}
		}
	}
	return s
}

func (s *suppressions) suppressed(kind string, pos token.Position) bool {
	byKind := s.cover[pos.Filename]
	if byKind == nil {
		return false
	}
	return byKind[kind][pos.Line]
}

// Run executes the analyzers over one package and returns the surviving
// diagnostics: suppressed findings are dropped, bare (reason-less)
// pragmas of each analyzer's kind are added, and duplicates (the same
// position and message reached through two call contexts) collapse.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := buildSuppressions(pkg)
	var out []Diagnostic
	seen := map[string]bool{}
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			if sup.suppressed(a.Pragma, d.Pos) {
				continue
			}
			key := d.Pos.String() + "\x00" + d.Analyzer + "\x00" + d.Message
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, d)
		}
		// A bare pragma of this analyzer's kind is a finding in its own
		// right (and can never suppress itself).
		for _, pr := range sup.bare {
			if pr.kind != a.Pragma {
				continue
			}
			key := pr.pos.String() + "\x00" + a.Name + "\x00bare"
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Diagnostic{
				Pos: pr.pos,
				Message: fmt.Sprintf(
					"//specfem:%s pragma requires a non-empty reason", pr.kind),
				Analyzer: a.Name,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

// All returns the registered analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		HaloReq,
		FlopAudit,
		Determinism,
		PoolSafety,
		PhasePair,
	}
}
