package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgBase returns the last path segment of an import path — analyzers
// scope themselves by suffix ("solver", "mpi", ...) so the real tree
// (specglobe/internal/solver) and the test fixtures
// (flopaudit/bad/solver) match the same rules.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// scopedTo reports whether the pass's package path base is one of names.
func (p *Pass) scopedTo(names ...string) bool {
	base := pkgBase(p.Pkg.Path())
	for _, n := range names {
		if base == n {
			return true
		}
	}
	return false
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// calleeOf resolves the function or method a call statically invokes,
// or nil for indirect calls (function values, interface methods with no
// selection entry) and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (perf.DefaultFlopCounts, mpi.Waitall).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcFromPkg reports whether f is declared in a package whose path
// base is name.
func funcFromPkg(f *types.Func, name string) bool {
	return f != nil && f.Pkg() != nil && pkgBase(f.Pkg().Path()) == name
}

// recvTypeName returns the name of a method's receiver's named type
// ("" for plain functions).
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declIndex maps each function object declared in the package to its
// declaration.
func declIndex(p *Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[obj] = fd
			}
		}
	}
	return out
}

// callGraph maps every declared function to the package-local functions
// its body calls. Calls made from closures nested in the body belong to
// the enclosing declaration: the closure runs on the declaration's
// behalf (pool chunks, Time sections), which is exactly the containment
// the accounting and phase invariants reason about.
func callGraph(p *Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func][]*types.Func {
	out := map[*types.Func][]*types.Func{}
	for obj, fd := range decls {
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(p.TypesInfo, call)
			if callee == nil || seen[callee] {
				return true
			}
			if _, local := decls[callee]; local {
				seen[callee] = true
				out[obj] = append(out[obj], callee)
			}
			return true
		})
	}
	return out
}

// buildParents maps every node under root to its parent.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// parentSkipParens walks up from n past parenthesis nodes.
func parentSkipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		if _, ok := p.(*ast.ParenExpr); !ok {
			return p
		}
		p = parents[p]
	}
}

// hasFloatLoop reports whether body contains floating-point arithmetic
// inside a for or range statement (at any nesting depth, closures
// included).
func hasFloatLoop(info *types.Info, body ast.Node) bool {
	found := false
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		if n == nil || found {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if found {
				return false
			}
			switch mm := m.(type) {
			case *ast.ForStmt:
				if mm.Body != nil {
					walk(mm.Body, true)
				}
				// Init/Cond/Post stay at the current depth.
				return false
			case *ast.RangeStmt:
				if mm.Body != nil {
					walk(mm.Body, true)
				}
				return false
			case *ast.BinaryExpr:
				if inLoop {
					switch mm.Op.String() {
					case "+", "-", "*", "/":
						if isFloat(info.TypeOf(mm.X)) || isFloat(info.TypeOf(mm.Y)) {
							found = true
							return false
						}
					}
				}
			case *ast.AssignStmt:
				if inLoop {
					switch mm.Tok.String() {
					case "+=", "-=", "*=", "/=":
						if len(mm.Lhs) == 1 && isFloat(info.TypeOf(mm.Lhs[0])) {
							found = true
							return false
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	return found
}

// rootIdent walks to the base identifier of an index/selector/star/
// slice/address chain: the variable through which a write or read
// ultimately reaches memory. Returns nil for expressions not rooted at
// an identifier (calls, literals).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
