package analysis

import (
	"go/ast"
	"go/types"
)

// FlopAudit makes the PR 4 flop/byte accounting audit permanent. In the
// solver package, a function containing floating-point loops must be
// accounted: either it charges the analytic model itself (AddFlops/
// AddBytes with the perf.FlopCounts/ByteCounts constants) or it is
// called — directly or transitively — by a function that does, the way
// the force-kernel chunk helpers are covered by their sweep's caller.
// In the simd package the exported kernels are the accounting contract
// surface (their call sites in the solver charge the per-element
// constants), so exported functions and everything they reach are
// covered by convention; an unexported simd function with float loops
// that no exported kernel reaches is dead or unaccounted. Intentional
// exceptions (setup work outside the stepped main loop) carry
// //specfem:noaccount with a reason.
var FlopAudit = &Analyzer{
	Name:   "flopaudit",
	Pragma: "noaccount",
	Doc: "check that floating-point loops in solver/simd are reached by " +
		"perf flop/byte accounting (FlopCounts/AddFlops/AddBytes, PR 4); " +
		"see DESIGN.md#invariants-as-analyzers",
	Run: runFlopAudit,
}

func runFlopAudit(pass *Pass) error {
	if !pass.scopedTo("solver", "simd") {
		return nil
	}
	decls := declIndex(pass)
	graph := callGraph(pass, decls)

	// Roots of coverage: accounting functions in the solver, the
	// exported contract surface in simd.
	covered := map[*types.Func]bool{}
	var work []*types.Func
	simd := pass.scopedTo("simd")
	for obj, fd := range decls {
		root := false
		if simd {
			root = fd.Name.IsExported()
		} else {
			root = callsAccounting(pass.TypesInfo, fd.Body)
		}
		if root {
			covered[obj] = true
			work = append(work, obj)
		}
	}
	for len(work) > 0 {
		obj := work[len(work)-1]
		work = work[:len(work)-1]
		for _, callee := range graph[obj] {
			if !covered[callee] {
				covered[callee] = true
				work = append(work, callee)
			}
		}
	}

	for obj, fd := range decls {
		if covered[obj] {
			continue
		}
		if !hasFloatLoop(pass.TypesInfo, fd.Body) {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"%s has floating-point loops but is not reached by perf flop/byte accounting (AddFlops/AddBytes via FlopCounts/ByteCounts); annotate //specfem:noaccount <reason> if the work is intentionally uncounted", fd.Name.Name)
	}
	return nil
}

// callsAccounting reports whether body directly charges the perf model.
func callsAccounting(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPerfAdd(info, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isPerfAdd matches AddFlops/AddBytes calls on the perf profiler.
func isPerfAdd(info *types.Info, call *ast.CallExpr) bool {
	callee := calleeOf(info, call)
	if callee == nil || !funcFromPkg(callee, "perf") {
		return false
	}
	return callee.Name() == "AddFlops" || callee.Name() == "AddBytes"
}

// perfPhaseConst returns the constant value of a perf.Phase expression
// and the source identifier naming it, or ok=false for non-constant
// phases. Shared with the phasepair analyzer.
func perfPhaseConst(info *types.Info, e ast.Expr) (val string, name string, ok bool) {
	tv, found := info.Types[unparen(e)]
	if !found || tv.Value == nil {
		return "", "", false
	}
	name = "phase"
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	}
	return tv.Value.ExactString(), name, true
}
