// Package simd is the flopaudit negative fixture: exported kernels and
// the unexported helpers they reach are the accounted contract surface.
package simd

// Mul4 is an exported kernel; its call sites charge the model.
func Mul4(dst, a, b []float32) {
	mulChunk(dst, a, b)
}

func mulChunk(dst, a, b []float32) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}
