// Package solver is the flopaudit negative fixture: the accounted
// caller covers its chunk helpers, and a reasoned pragma covers
// intentional setup work.
package solver

import "perf"

const flopsPerPoint = 2

type rank struct {
	prof *perf.Profiler
}

func (r *rank) step(y, x []float32, a float32) {
	axpyChunk(y, x, a)
	r.prof.AddFlops(perf.PhaseForces, int64(len(x))*flopsPerPoint)
	r.prof.AddBytes(perf.PhaseForces, int64(len(x))*12)
}

// axpyChunk is covered through its accounted caller.
func axpyChunk(y, x []float32, a float32) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// setup precomputes coefficient tables before stepping starts.
//
//specfem:noaccount one-time setup outside the stepped loop; the model counts kernel work only
func setup(w []float64) {
	for i := range w {
		w[i] = w[i] * 0.5
	}
}
