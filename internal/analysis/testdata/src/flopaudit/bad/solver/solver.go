// Package solver is the flopaudit positive fixture: a float-loop
// kernel with no accounting root anywhere in the package.
package solver

func axpy(y, x []float32, a float32) { // want "axpy has floating-point loops but is not reached by perf flop/byte accounting"
	for i := range x {
		y[i] += a * x[i]
	}
}

func norm(x []float64) float64 { // want "norm has floating-point loops but is not reached by perf flop/byte accounting"
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}
