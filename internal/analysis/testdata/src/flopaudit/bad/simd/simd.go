// Package simd is the flopaudit positive fixture for the exported-
// contract rule: an exported kernel is the accounting surface, but an
// unexported float-loop helper that no exported kernel reaches is
// unaccounted.
package simd

// Scale is an exported kernel: its solver call sites charge the model.
func Scale(dst, src []float32, a float32) {
	for i := range dst {
		dst[i] = a * src[i]
	}
}

func orphan(dst []float32) { // want "orphan has floating-point loops but is not reached by perf flop/byte accounting"
	for i := range dst {
		dst[i] *= 0.5
	}
}
