// Package mpi is a fixture double mirroring the request API shape of
// specglobe/internal/mpi; the analyzers match it by package base name.
package mpi

// Comm is one rank's communicator.
type Comm struct{}

// Request is a pending non-blocking receive.
type Request struct{}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(src, tag int) *Request { return &Request{} }

// Isend posts a non-blocking send (no completion handle in this model).
func (c *Comm) Isend(dst, tag int, buf []float32) {}

// Send is the blocking send.
func (c *Comm) Send(dst, tag int, buf []float32) {}

// Wait blocks until the message arrives and returns the payload.
func (r *Request) Wait() []float32 { return nil }

// Test polls for completion.
func (r *Request) Test() ([]float32, bool) { return nil, false }

// Waitall completes a batch of requests.
func Waitall(reqs []*Request) {}
