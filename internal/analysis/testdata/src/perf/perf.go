// Package perf is a fixture double mirroring the profiler API shape of
// specglobe/internal/perf; the analyzers match it by package base name.
package perf

// Phase labels one accounted section of the time step.
type Phase int

// Phases of the fixture model.
const (
	PhaseForces Phase = iota
	PhaseUpdate
	PhaseComm
)

// Profiler accumulates per-phase time, flops and bytes.
type Profiler struct{}

// Start opens the run's wall-time window.
func (p *Profiler) Start() {}

// Stop closes the run's wall-time window.
func (p *Profiler) Stop() {}

// Time runs f and charges its duration to ph.
func (p *Profiler) Time(ph Phase, f func()) { f() }

// Add charges an externally measured duration to ph.
func (p *Profiler) Add(ph Phase, d int64) {}

// AddFlops charges n floating-point operations to ph.
func (p *Profiler) AddFlops(ph Phase, n int64) {}

// AddBytes charges n bytes of memory traffic to ph.
func (p *Profiler) AddBytes(ph Phase, n int64) {}
