// Package bad holds the phasepair positive fixtures: broken Start/Stop
// pairing, phase-mismatched accounting, and orphan flop adds.
package bad

import "perf"

func startNoStop(p *perf.Profiler) {
	p.Start() // want "Profiler.Start without a matching Stop"
	work()
}

func work() {}

func mismatch(p *perf.Profiler, n int64) {
	p.Time(perf.PhaseForces, func() { // want "reaches AddFlops/AddBytes for phase PhaseUpdate"
		p.AddFlops(perf.PhaseUpdate, n)
	})
}

func mismatchTransitive(p *perf.Profiler, xs []float32, n int64) {
	p.Time(perf.PhaseComm, func() { // want "reaches AddFlops/AddBytes for phase PhaseUpdate"
		charge(p, xs, n)
	})
}

func charge(p *perf.Profiler, xs []float32, n int64) {
	sum := float32(0)
	for _, x := range xs {
		sum += x
	}
	_ = sum
	p.AddBytes(perf.PhaseUpdate, n)
}

func orphanAdd(p *perf.Profiler, n int64) {
	p.AddFlops(perf.PhaseForces, n) // want "flop/byte accounting with no accounted work"
}
