// Package good holds the phasepair negative fixtures: paired Start/
// Stop, phase-consistent Time sections, adds next to the counted loop,
// and a reasoned pragma.
package good

import "perf"

func paired(p *perf.Profiler) {
	p.Start()
	defer p.Stop()
}

func matched(p *perf.Profiler, xs []float32) {
	p.Time(perf.PhaseForces, func() {
		sum := float32(0)
		for _, x := range xs {
			sum += x
		}
		_ = sum
		p.AddFlops(perf.PhaseForces, int64(len(xs)))
	})
}

func matchedTransitive(p *perf.Profiler, xs []float32) {
	p.Time(perf.PhaseUpdate, func() {
		chargeUpdate(p, xs)
	})
}

func chargeUpdate(p *perf.Profiler, xs []float32) {
	sum := float32(0)
	for _, x := range xs {
		sum += x
	}
	_ = sum
	p.AddFlops(perf.PhaseUpdate, int64(len(xs)))
}

func countedLoop(p *perf.Profiler, y, x []float32, a float32) {
	for i := range x {
		y[i] += a * x[i]
	}
	p.AddFlops(perf.PhaseForces, int64(2*len(x)))
}

// dispatched charges a phase for work handed to another goroutine.
//
//specfem:nophasepair the counted work is dispatched elsewhere in this fixture; the add is deliberate
func dispatched(p *perf.Profiler, n int64) {
	p.AddFlops(perf.PhaseUpdate, n)
}
