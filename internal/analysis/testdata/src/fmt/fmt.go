// Package fmt is a fixture double shadowing the standard library so
// the determinism fixtures stay hermetic under the GOPATH-style loader.
package fmt

// Printf formats and prints.
func Printf(format string, args ...any) {}

// Errorf formats an error.
func Errorf(format string, args ...any) error { return nil }
