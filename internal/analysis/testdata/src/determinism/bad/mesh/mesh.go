// Package mesh is the determinism positive fixture: map-order-
// dependent work and nondeterministic sources in a bit-identity
// package.
package mesh

import (
	"fmt"
	"math/rand"
	"time"
)

func accumulate(w map[int]float64) float64 {
	total := 0.0
	for _, v := range w { // want "map iteration feeds floating-point accumulation"
		total += v
	}
	return total
}

func report(m map[int]int) {
	for k := range m { // want "map iteration drives fmt output"
		fmt.Printf("%d\n", k)
	}
}

func stamp() time.Time {
	return time.Now() // want "wall-clock read"
}

func jitter() float64 {
	return rand.Float64() // want "math/rand use"
}
