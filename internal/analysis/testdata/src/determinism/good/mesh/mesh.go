// Package mesh is the determinism negative fixture: the deterministic
// versions of the flagged patterns, plus a reasoned pragma.
package mesh

import "time"

func accumulate(w map[int]float64) float64 {
	keys := make([]int, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	insertionSort(keys)
	total := 0.0
	for _, k := range keys {
		total += w[k]
	}
	return total
}

func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// elapsed measures pool busy time for reporting.
//
//specfem:nodeterminism busy-time attribution only: feeds reporting, never mesh or solver state
func elapsed() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
