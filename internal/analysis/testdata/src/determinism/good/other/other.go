// Package other sits outside the determinism scope (not solver, mesh,
// simd, or meshfem): wall-clock reads are the bench harness's business.
package other

import "time"

// Stamp reads the wall clock; allowed outside bit-identity packages.
func Stamp() time.Time { return time.Now() }
