// Package good holds the haloreq negative fixtures: every request
// reaches completion or escapes to an owner who completes it.
package good

import "mpi"

func waits(c *mpi.Comm) []float32 {
	req := c.Irecv(0, 1)
	return req.Wait()
}

func polls(c *mpi.Comm) bool {
	req := c.Irecv(0, 1)
	for {
		if _, ok := req.Test(); ok {
			return true
		}
	}
}

func batched(c *mpi.Comm) {
	var reqs []*mpi.Request
	for peer := 0; peer < 4; peer++ {
		reqs = append(reqs, c.Irecv(peer, 1))
	}
	mpi.Waitall(reqs)
}

func methodValue(c *mpi.Comm) func() []float32 {
	req := c.Irecv(0, 1)
	return req.Wait
}

func escapes(c *mpi.Comm) *mpi.Request {
	return c.Irecv(0, 1)
}

func aliased(c *mpi.Comm) {
	req := c.Irecv(0, 1)
	pending := req
	pending.Wait()
}

func stored(c *mpi.Comm, slots []*mpi.Request) {
	slots[0] = c.Irecv(0, 1)
	mpi.Waitall(slots)
}

func suppressed(c *mpi.Comm) {
	//specfem:nohaloreq completed by the caller through a side table this fixture does not model
	req := c.Irecv(0, 1)
	_ = req
}
