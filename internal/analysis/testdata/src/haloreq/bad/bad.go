// Package bad holds the haloreq positive fixtures: leaked halo
// receives the analyzer must flag.
package bad

import "mpi"

func discarded(c *mpi.Comm) {
	c.Irecv(0, 1) // want "result of Irecv is discarded"
}

func blanked(c *mpi.Comm) {
	_ = c.Irecv(0, 1) // want "result of Irecv is assigned to _"
}

func leaked(c *mpi.Comm) {
	req := c.Irecv(0, 1) // want "request req from Irecv never reaches Wait, Test, or Waitall"
	_ = req
}

func aliasLeaked(c *mpi.Comm) {
	req := c.Irecv(0, 1) // want "request req from Irecv never reaches Wait, Test, or Waitall"
	r2 := req
	_ = r2
}

func barePragma(c *mpi.Comm) {
	/* want "pragma requires a non-empty reason" */ //specfem:nohaloreq
	req := c.Irecv(0, 1)                            // want "request req from Irecv never reaches Wait, Test, or Waitall"
	_ = req
}
