// Package time is a fixture double shadowing the standard library so
// the determinism fixtures stay hermetic under the GOPATH-style loader.
package time

// Time is an instant.
type Time struct{}

// Duration is an elapsed interval.
type Duration int64

// Now returns the current instant.
func Now() Time { return Time{} }

// Since returns the interval elapsed since t.
func Since(t Time) Duration { return 0 }
