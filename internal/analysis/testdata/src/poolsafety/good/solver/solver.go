// Package solver is the poolsafety negative fixture: the sanctioned
// chunk patterns — writes indexed through the chunk's own elements or
// range, scratch kept private, fresh allocations, and a reasoned
// pragma for a deliberate exception.
package solver

const ngll3 = 8

type kernelScratch struct {
	t1 [8]float32
	ux [8]float32
}

type pool struct{}

func (p *pool) sweepElems(scr []*kernelScratch, elems []int32, busy *int64, fn func(ks *kernelScratch, elems []int32)) {
	fn(scr[0], elems)
}

func (p *pool) sweepRange(scr []*kernelScratch, n int, busy *int64, fn func(ks *kernelScratch, lo, hi int)) {
	fn(scr[0], 0, n)
}

type state struct {
	accel []float32
	ibool []int32
	mass  []float32
}

func forces(p *pool, s *state, scr []*kernelScratch, elems []int32) {
	var busy int64
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		t1 := &ks.t1
		for k := range t1 {
			t1[k] = 0
		}
		local := make([]float32, ngll3)
		for _, e32 := range elems {
			e := int(e32)
			base := e * ngll3
			ib := s.ibool[base : base+ngll3]
			for k, g := range ib {
				local[k] = float32(k)
				s.accel[g] += t1[k] * local[k]
			}
		}
	})
}

func update(p *pool, s *state, scr []*kernelScratch, n int) {
	var busy int64
	p.sweepRange(scr, n, &busy, func(ks *kernelScratch, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.accel[i] *= s.mass[i]
		}
	})
}

func helperDriver(p *pool, s *state, scr []*kernelScratch, elems []int32) {
	var busy int64
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		s.goodChunk(ks, elems)
	})
}

// goodChunk writes through the chunk's own element list, the coloring-
// class contract.
func (s *state) goodChunk(ks *kernelScratch, elems []int32) {
	for _, e32 := range elems {
		s.accel[int(e32)] += ks.ux[0]
	}
}

func reduction(p *pool, s *state, scr []*kernelScratch, elems []int32) {
	var busy int64
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		//specfem:nopoolsafety single-writer slot: the sweep dispatches one chunk per color, and slot 0 belongs to this fixture's only chunk
		s.accel[0] = 0
	})
}
