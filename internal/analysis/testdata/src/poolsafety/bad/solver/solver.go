// Package solver is the poolsafety positive fixture: a miniature
// worker pool with the real sweep shapes, driven by chunk closures
// that break the conventions.
package solver

type kernelScratch struct {
	t1 [8]float32
}

type pool struct{}

func (p *pool) sweepElems(scr []*kernelScratch, elems []int32, busy *int64, fn func(ks *kernelScratch, elems []int32)) {
	fn(scr[0], elems)
}

func (p *pool) sweepRange(scr []*kernelScratch, n int, busy *int64, fn func(ks *kernelScratch, lo, hi int)) {
	fn(scr[0], 0, n)
}

type state struct {
	accel []float32
	ibool []int32
	seen  map[int32]bool
	next  int
}

func capturedVar(p *pool, scr []*kernelScratch, elems []int32) int {
	var busy int64
	count := 0
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		count++ // want "write to captured variable count inside a pool chunk"
	})
	return count
}

func capturedField(p *pool, s *state, scr []*kernelScratch, elems []int32) {
	var busy int64
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		s.next = len(elems) // want "write to shared state is not indexed through the chunk's own range"
	})
}

func wrongIndex(p *pool, s *state, scr []*kernelScratch, elems []int32) {
	var busy int64
	step := 3
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		s.accel[step] = 0 // want "write to shared state is not indexed through the chunk's own range"
	})
	_ = step
}

func mapWrite(p *pool, s *state, scr []*kernelScratch, elems []int32) {
	var busy int64
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		s.seen[elems[0]] = true // want "map write inside a pool chunk"
	})
}

func scratchEscape(p *pool, scr []*kernelScratch, elems []int32) *kernelScratch {
	var busy int64
	var stash *kernelScratch
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		stash = ks // want "write to captured variable stash inside a pool chunk" "kernelScratch escapes the pool chunk into captured state"
	})
	return stash
}

func helperDriver(p *pool, s *state, scr []*kernelScratch, elems []int32) {
	var busy int64
	p.sweepElems(scr, elems, &busy, func(ks *kernelScratch, elems []int32) {
		s.badChunk(ks, elems)
	})
}

// badChunk is reached with the chunk's arguments, so it is checked
// under the chunk rules one call layer deep.
func (s *state) badChunk(ks *kernelScratch, elems []int32) {
	s.accel[s.next] = 0 // want "write to shared state is not indexed through the chunk's own range"
}
