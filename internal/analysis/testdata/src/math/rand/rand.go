// Package rand is a fixture double shadowing math/rand so the
// determinism fixtures stay hermetic under the GOPATH-style loader.
package rand

// Float64 returns a pseudo-random float in [0,1).
func Float64() float64 { return 0 }

// Intn returns a pseudo-random int in [0,n).
func Intn(n int) int { return 0 }
