package boxmesh

import (
	"math"
	"testing"

	"specglobe/internal/earthmodel"
	"specglobe/internal/mesh"
)

var mat = earthmodel.Material{Rho: 2700, Vp: 8000, Vs: 4500, Qmu: 600, Qkappa: 57823}

func TestBuildValidation(t *testing.T) {
	bad := []Config{
		{Nx: 0, Ny: 1, Nz: 1, Lx: 1, Ly: 1, Lz: 1, NRanks: 1, Mat: mat},
		{Nx: 1, Ny: 1, Nz: 1, Lx: 0, Ly: 1, Lz: 1, NRanks: 1, Mat: mat},
		{Nx: 4, Ny: 1, Nz: 1, Lx: 1, Ly: 1, Lz: 1, NRanks: 3, Mat: mat},
		{Nx: 1, Ny: 1, Nz: 1, Lx: 1, Ly: 1, Lz: 1, NRanks: 0, Mat: mat},
		{Nx: 1, Ny: 1, Nz: 1, Lx: 1, Ly: 1, Lz: 1, NRanks: 1},
	}
	for i, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBoxStructureAndVolume(t *testing.T) {
	b, err := Build(Config{Nx: 4, Ny: 3, Nz: 2, Lx: 40, Ly: 30, Lz: 20, NRanks: 2, Mat: mat})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Locals) != 2 {
		t.Fatalf("%d ranks", len(b.Locals))
	}
	total := 0
	vol := 0.0
	for _, l := range b.Locals {
		r := l.Regions[earthmodel.RegionCrustMantle]
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		total += r.NSpec
		vol += r.Volume()
	}
	if total != 4*3*2 {
		t.Errorf("%d elements, want 24", total)
	}
	// Affine elements integrate the volume exactly.
	if math.Abs(vol-40*30*20) > 1e-6*vol {
		t.Errorf("volume %v want %v", vol, 40*30*20)
	}
}

// The split planes must produce matching halo points between slabs:
// each interface holds (4*Ny+1)(4*Nz+1) GLL points... verify counts are
// consistent and symmetric.
func TestBoxHalo(t *testing.T) {
	b, err := Build(Config{Nx: 4, Ny: 2, Nz: 2, Lx: 40, Ly: 20, Lz: 20, NRanks: 4, Mat: mat})
	if err != nil {
		t.Fatal(err)
	}
	kind := int(earthmodel.RegionCrustMantle)
	// Interface between slab i and i+1: one shared plane of
	// (NGLL-1)*Ny+1 by (NGLL-1)*Nz+1 points.
	wantPlane := ((mesh.NGLL-1)*2 + 1) * ((mesh.NGLL-1)*2 + 1)
	for rank := 0; rank < 3; rank++ {
		edges := b.Plans[rank].Edges[kind]
		found := false
		for _, e := range edges {
			if e.Peer == rank+1 {
				found = true
				if len(e.Idx) != wantPlane {
					t.Errorf("rank %d->%d shares %d points, want %d", rank, rank+1, len(e.Idx), wantPlane)
				}
			}
		}
		if !found {
			t.Errorf("rank %d has no edge to %d", rank, rank+1)
		}
	}
	// Non-adjacent slabs share nothing.
	for _, e := range b.Plans[0].Edges[kind] {
		if e.Peer == 2 || e.Peer == 3 {
			t.Errorf("slab 0 shares points with non-adjacent slab %d", e.Peer)
		}
	}
}

func TestLocateRoundTrip(t *testing.T) {
	b, err := Build(Config{Nx: 4, Ny: 4, Nz: 4, Lx: 40, Ly: 40, Lz: 40, NRanks: 2, Mat: mat})
	if err != nil {
		t.Fatal(err)
	}
	cases := [][3]float64{
		{5, 5, 5}, {20, 20, 20}, {39.9, 0.1, 35}, {0, 0, 0}, {40, 40, 40},
	}
	for _, c := range cases {
		rank, elem, ref, err := b.Locate(c[0], c[1], c[2])
		if err != nil {
			t.Fatalf("locate %v: %v", c, err)
		}
		reg := b.Locals[rank].Regions[earthmodel.RegionCrustMantle]
		if elem < 0 || elem >= reg.NSpec {
			t.Fatalf("locate %v: element %d out of range", c, elem)
		}
		got := mesh.InterpolateGeometry(reg, elem, ref)
		for d := 0; d < 3; d++ {
			if math.Abs(got[d]-c[d]) > 1e-9*40 {
				t.Fatalf("locate %v: interpolates to %v", c, got)
			}
		}
	}
	if _, _, _, err := b.Locate(-1, 0, 0); err == nil {
		t.Error("outside point accepted")
	}
	if _, _, _, err := b.Locate(0, 99, 0); err == nil {
		t.Error("outside point accepted")
	}
}

// Jacobian factors of the affine elements must be exact.
func TestBoxJacobian(t *testing.T) {
	b, err := Build(Config{Nx: 2, Ny: 2, Nz: 2, Lx: 20, Ly: 40, Lz: 80, NRanks: 1, Mat: mat})
	if err != nil {
		t.Fatal(err)
	}
	r := b.Locals[0].Regions[earthmodel.RegionCrustMantle]
	// Element half-sizes: hx=5, hy=10, hz=20 -> det = 1000.
	for ip := 0; ip < mesh.NGLL3; ip++ {
		if math.Abs(float64(r.Jac[ip])-1000) > 1e-3 {
			t.Fatalf("det %v want 1000", r.Jac[ip])
		}
		if math.Abs(float64(r.Xix[ip])-0.2) > 1e-6 {
			t.Fatalf("xix %v want 0.2", r.Xix[ip])
		}
		if math.Abs(float64(r.Etay[ip])-0.1) > 1e-6 {
			t.Fatalf("etay %v want 0.1", r.Etay[ip])
		}
		if math.Abs(float64(r.Gamz[ip])-0.05) > 1e-6 {
			t.Fatalf("gamz %v want 0.05", r.Gamz[ip])
		}
	}
}

func BenchmarkBoxBuild(b *testing.B) {
	cfg := Config{Nx: 4, Ny: 4, Nz: 4, Lx: 40, Ly: 40, Lz: 40, NRanks: 1, Mat: mat}
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
