// Package boxmesh builds rectangular Cartesian spectral-element meshes
// that use exactly the same mesh.Local structures as the globe mesher.
// It exists for validation of the solver physics the paper's section 3
// benchmark set exercises: plane waves, point sources and energy
// budgets in a homogeneous box have known behavior, so the solver's
// kernels can be tested without the sphere's geometric complexity.
package boxmesh

import (
	"fmt"

	"specglobe/internal/earthmodel"
	"specglobe/internal/gll"
	"specglobe/internal/mesh"
)

// Config describes a box mesh.
type Config struct {
	// Nx, Ny, Nz are element counts per axis.
	Nx, Ny, Nz int
	// Lx, Ly, Lz are the box dimensions in meters.
	Lx, Ly, Lz float64
	// NRanks splits the box into slabs along x (Nx must divide evenly).
	NRanks int
	// Mat is the uniform material.
	Mat earthmodel.Material
}

// Box is the built mesh plus the grids needed for point location.
type Box struct {
	Cfg        Config
	Locals     []*mesh.Local
	Plans      []*mesh.HaloPlan
	gx, gy, gz []float64
}

var gllS = func() [gll.NGLL]float64 {
	var s [gll.NGLL]float64
	for i, x := range gll.Points(gll.Degree) {
		s[i] = (x + 1) / 2
	}
	s[0], s[gll.NGLL-1] = 0, 1
	return s
}()

var gllW = func() [gll.NGLL]float64 {
	var w [gll.NGLL]float64
	copy(w[:], gll.Weights(gll.Degree, gll.Points(gll.Degree)))
	return w
}()

func lerp(lo, hi, s float64) float64 { return lo*(1-s) + hi*s }

func grid(n int, L float64) []float64 {
	g := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		g[i] = L * float64(i) / float64(n)
	}
	return g
}

// Build constructs the box mesh.
func Build(cfg Config) (*Box, error) {
	if cfg.Nx < 1 || cfg.Ny < 1 || cfg.Nz < 1 {
		return nil, fmt.Errorf("boxmesh: element counts must be positive")
	}
	if cfg.Lx <= 0 || cfg.Ly <= 0 || cfg.Lz <= 0 {
		return nil, fmt.Errorf("boxmesh: dimensions must be positive")
	}
	if cfg.NRanks < 1 {
		return nil, fmt.Errorf("boxmesh: NRanks must be >= 1")
	}
	if cfg.Nx%cfg.NRanks != 0 {
		return nil, fmt.Errorf("boxmesh: Nx=%d not divisible by NRanks=%d", cfg.Nx, cfg.NRanks)
	}
	if cfg.Mat.Rho <= 0 || cfg.Mat.Vp <= 0 {
		return nil, fmt.Errorf("boxmesh: material must have positive rho and vp")
	}
	b := &Box{
		Cfg: cfg,
		gx:  grid(cfg.Nx, cfg.Lx),
		gy:  grid(cfg.Ny, cfg.Ly),
		gz:  grid(cfg.Nz, cfg.Lz),
	}
	perRank := cfg.Nx / cfg.NRanks
	b.Locals = make([]*mesh.Local, cfg.NRanks)
	for rank := 0; rank < cfg.NRanks; rank++ {
		local := &mesh.Local{Rank: rank}
		for kind := 0; kind < 3; kind++ {
			local.Regions[kind] = mesh.NewRegion(earthmodel.Region(kind), 0)
		}
		nspec := perRank * cfg.Ny * cfg.Nz
		reg := mesh.NewRegion(earthmodel.RegionCrustMantle, nspec)
		pi := mesh.NewPointIndexer()
		e := 0
		for k := 0; k < cfg.Nz; k++ {
			for j := 0; j < cfg.Ny; j++ {
				for i := rank * perRank; i < (rank+1)*perRank; i++ {
					b.fillElement(reg, pi, e, i, j, k)
					e++
				}
			}
		}
		reg.NGlob = pi.Len()
		reg.Pts = pi.Points()
		reg.AssembleMassLocal()
		if err := reg.Validate(); err != nil {
			return nil, fmt.Errorf("boxmesh: rank %d: %w", rank, err)
		}
		local.Regions[earthmodel.RegionCrustMantle] = reg
		b.Locals[rank] = local
	}
	var err error
	b.Plans, err = mesh.BuildHalo(b.Locals)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// fillElement fills one affine box element: the Jacobian is constant.
func (b *Box) fillElement(reg *mesh.Region, pi *mesh.PointIndexer, e, i, j, k int) {
	x0, x1 := b.gx[i], b.gx[i+1]
	y0, y1 := b.gy[j], b.gy[j+1]
	z0, z1 := b.gz[k], b.gz[k+1]
	hx, hy, hz := (x1-x0)/2, (y1-y0)/2, (z1-z0)/2
	det := hx * hy * hz
	mat := b.Cfg.Mat
	for kk := 0; kk < mesh.NGLL; kk++ {
		for jj := 0; jj < mesh.NGLL; jj++ {
			for ii := 0; ii < mesh.NGLL; ii++ {
				ip := mesh.Idx(e, ii, jj, kk)
				x := lerp(x0, x1, gllS[ii])
				y := lerp(y0, y1, gllS[jj])
				z := lerp(z0, z1, gllS[kk])
				reg.Ibool[ip] = pi.Index(x, y, z)
				reg.Xix[ip] = float32(1 / hx)
				reg.Etay[ip] = float32(1 / hy)
				reg.Gamz[ip] = float32(1 / hz)
				reg.Jac[ip] = float32(det)
				reg.JacW[ip] = float32(det * gllW[ii] * gllW[jj] * gllW[kk])
				reg.Rho[ip] = float32(mat.Rho)
				reg.Kappa[ip] = float32(mat.Kappa())
				reg.Mu[ip] = float32(mat.Mu())
			}
		}
	}
	reg.Qmu[e] = float32(mat.Qmu)
	reg.Qkappa[e] = float32(mat.Qkappa)
}

// Locate returns the rank, element and reference coordinates of a
// physical position inside the box.
func (b *Box) Locate(x, y, z float64) (rank, elem int, ref [3]float64, err error) {
	cell := func(g []float64, v float64) (int, float64, error) {
		if v < g[0] || v > g[len(g)-1] {
			return 0, 0, fmt.Errorf("boxmesh: coordinate %g outside [%g, %g]", v, g[0], g[len(g)-1])
		}
		for i := 0; i+1 < len(g); i++ {
			if v <= g[i+1] || i == len(g)-2 {
				return i, 2*(v-g[i])/(g[i+1]-g[i]) - 1, nil
			}
		}
		return len(g) - 2, 1, nil
	}
	ci, rx, err := cell(b.gx, x)
	if err != nil {
		return 0, 0, ref, err
	}
	cj, ry, err := cell(b.gy, y)
	if err != nil {
		return 0, 0, ref, err
	}
	ck, rz, err := cell(b.gz, z)
	if err != nil {
		return 0, 0, ref, err
	}
	perRank := b.Cfg.Nx / b.Cfg.NRanks
	rank = ci / perRank
	iLocal := ci - rank*perRank
	elem = (ck*b.Cfg.Ny+cj)*perRank + iLocal
	return rank, elem, [3]float64{rx, ry, rz}, nil
}
