// Package seismo provides the seismogram post-processing a user of the
// solver needs to compare synthetics: tapering, band-pass filtering,
// resampling, cross-correlation time shifts, and ASCII I/O compatible
// with core.WriteSeismograms. The paper's validation workflow —
// comparing synthetic seismograms between runs and against reference
// solutions ("two sets of synthetic seismograms that are
// indistinguishable when plotted superimposed", §4.2) — is quantified
// with these tools.
package seismo

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Trace is a single-component, uniformly sampled time series.
type Trace struct {
	Name string
	Dt   float64 // sampling interval in seconds
	Data []float64
}

// Clone returns a deep copy.
func (t *Trace) Clone() *Trace {
	return &Trace{Name: t.Name, Dt: t.Dt, Data: append([]float64(nil), t.Data...)}
}

// Duration returns the time span of the trace.
func (t *Trace) Duration() float64 { return float64(len(t.Data)) * t.Dt }

// PeakAmplitude returns max |x|.
func (t *Trace) PeakAmplitude() float64 {
	p := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > p {
			p = a
		}
	}
	return p
}

// RMS returns the root-mean-square amplitude.
func (t *Trace) RMS() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s / float64(len(t.Data)))
}

// Detrend removes the best-fit line in place.
func (t *Trace) Detrend() {
	n := float64(len(t.Data))
	if n < 2 {
		return
	}
	// Least squares for y = a + b*i.
	var sx, sy, sxx, sxy float64
	for i, v := range t.Data {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	for i := range t.Data {
		t.Data[i] -= a + b*float64(i)
	}
}

// Taper applies a cosine (Tukey) taper over the given fraction of each
// end (0 < frac <= 0.5) in place.
func (t *Trace) Taper(frac float64) {
	if frac <= 0 {
		return
	}
	if frac > 0.5 {
		frac = 0.5
	}
	n := len(t.Data)
	w := int(frac * float64(n))
	for i := 0; i < w; i++ {
		f := 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(w)))
		t.Data[i] *= f
		t.Data[n-1-i] *= f
	}
}

// Integrate converts e.g. velocity to displacement with the trapezoid
// rule, in place.
func (t *Trace) Integrate() {
	acc := 0.0
	prev := 0.0
	for i, v := range t.Data {
		if i > 0 {
			acc += 0.5 * (prev + v) * t.Dt
		}
		prev = v
		t.Data[i] = acc
	}
}

// Differentiate converts e.g. displacement to velocity (central
// differences, one-sided at the ends), in place.
func (t *Trace) Differentiate() {
	n := len(t.Data)
	if n < 2 {
		return
	}
	out := make([]float64, n)
	out[0] = (t.Data[1] - t.Data[0]) / t.Dt
	out[n-1] = (t.Data[n-1] - t.Data[n-2]) / t.Dt
	for i := 1; i < n-1; i++ {
		out[i] = (t.Data[i+1] - t.Data[i-1]) / (2 * t.Dt)
	}
	t.Data = out
}

// biquad is one second-order IIR section.
type biquad struct{ b0, b1, b2, a1, a2 float64 }

func (q biquad) apply(x []float64) {
	var w1, w2 float64
	for i, v := range x {
		w := v - q.a1*w1 - q.a2*w2
		x[i] = q.b0*w + q.b1*w1 + q.b2*w2
		w2, w1 = w1, w
	}
}

// lowpassBiquad returns a 2nd-order Butterworth low-pass section
// (bilinear transform).
func lowpassBiquad(fc, dt float64) biquad {
	k := math.Tan(math.Pi * fc * dt)
	norm := 1 / (1 + math.Sqrt2*k + k*k)
	return biquad{
		b0: k * k * norm,
		b1: 2 * k * k * norm,
		b2: k * k * norm,
		a1: 2 * (k*k - 1) * norm,
		a2: (1 - math.Sqrt2*k + k*k) * norm,
	}
}

// highpassBiquad returns a 2nd-order Butterworth high-pass section.
func highpassBiquad(fc, dt float64) biquad {
	k := math.Tan(math.Pi * fc * dt)
	norm := 1 / (1 + math.Sqrt2*k + k*k)
	return biquad{
		b0: norm,
		b1: -2 * norm,
		b2: norm,
		a1: 2 * (k*k - 1) * norm,
		a2: (1 - math.Sqrt2*k + k*k) * norm,
	}
}

// Lowpass applies a 2nd-order Butterworth low-pass at fc Hz in place.
func (t *Trace) Lowpass(fc float64) error {
	if err := t.checkFreq(fc); err != nil {
		return err
	}
	lowpassBiquad(fc, t.Dt).apply(t.Data)
	return nil
}

// Highpass applies a 2nd-order Butterworth high-pass at fc Hz in place.
func (t *Trace) Highpass(fc float64) error {
	if err := t.checkFreq(fc); err != nil {
		return err
	}
	highpassBiquad(fc, t.Dt).apply(t.Data)
	return nil
}

// Bandpass applies high-pass at f1 then low-pass at f2 (f1 < f2).
func (t *Trace) Bandpass(f1, f2 float64) error {
	if f1 >= f2 {
		return fmt.Errorf("seismo: band [%g, %g] inverted", f1, f2)
	}
	if err := t.Highpass(f1); err != nil {
		return err
	}
	return t.Lowpass(f2)
}

func (t *Trace) checkFreq(fc float64) error {
	nyquist := 0.5 / t.Dt
	if fc <= 0 || fc >= nyquist {
		return fmt.Errorf("seismo: corner %g Hz outside (0, %g)", fc, nyquist)
	}
	return nil
}

// Resample returns a new trace sampled at newDt by linear interpolation.
func (t *Trace) Resample(newDt float64) (*Trace, error) {
	if newDt <= 0 {
		return nil, fmt.Errorf("seismo: bad sampling interval %g", newDt)
	}
	dur := t.Duration()
	n := int(dur / newDt)
	out := &Trace{Name: t.Name, Dt: newDt, Data: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := float64(i) * newDt / t.Dt
		j := int(x)
		if j >= len(t.Data)-1 {
			out.Data[i] = t.Data[len(t.Data)-1]
			continue
		}
		f := x - float64(j)
		out.Data[i] = t.Data[j]*(1-f) + t.Data[j+1]*f
	}
	return out, nil
}

// CrossCorrelate returns the lag (in seconds, b relative to a) that
// maximizes the normalized cross-correlation, and the correlation value
// at that lag. maxLag bounds the search window in seconds.
func CrossCorrelate(a, b *Trace, maxLag float64) (lag float64, corr float64, err error) {
	if a.Dt != b.Dt {
		return 0, 0, fmt.Errorf("seismo: sampling intervals differ (%g vs %g)", a.Dt, b.Dt)
	}
	maxShift := int(maxLag / a.Dt)
	if maxShift < 0 {
		maxShift = 0
	}
	bestLag, bestC := 0, math.Inf(-1)
	na, nb := len(a.Data), len(b.Data)
	for shift := -maxShift; shift <= maxShift; shift++ {
		var sab, saa, sbb float64
		for i := 0; i < na; i++ {
			j := i + shift
			if j < 0 || j >= nb {
				continue
			}
			sab += a.Data[i] * b.Data[j]
			saa += a.Data[i] * a.Data[i]
			sbb += b.Data[j] * b.Data[j]
		}
		if saa == 0 || sbb == 0 {
			continue
		}
		c := sab / math.Sqrt(saa*sbb)
		if c > bestC {
			bestC, bestLag = c, shift
		}
	}
	if math.IsInf(bestC, -1) {
		return 0, 0, fmt.Errorf("seismo: empty overlap")
	}
	// Positive lag means b is delayed relative to a (its energy sits at
	// later sample indices, so the best alignment shift is positive).
	return float64(bestLag) * a.Dt, bestC, nil
}

// MisfitL2 returns the normalized L2 misfit ||a-b|| / ||a|| over the
// common length — the quantitative version of "indistinguishable when
// plotted superimposed".
func MisfitL2(a, b *Trace) (float64, error) {
	if a.Dt != b.Dt {
		return 0, fmt.Errorf("seismo: sampling intervals differ")
	}
	n := len(a.Data)
	if len(b.Data) < n {
		n = len(b.Data)
	}
	if n == 0 {
		return 0, fmt.Errorf("seismo: empty traces")
	}
	var num, den float64
	for i := 0; i < n; i++ {
		d := a.Data[i] - b.Data[i]
		num += d * d
		den += a.Data[i] * a.Data[i]
	}
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return math.Sqrt(num / den), nil
}

// ThreeComponent bundles the X/Y/Z traces of one station.
type ThreeComponent struct {
	Name    string
	X, Y, Z *Trace
}

// ReadSEM reads a .sem ASCII file (time, x, y, z per line) as written by
// core.WriteSeismograms.
func ReadSEM(path string) (*ThreeComponent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(strings.TrimSuffix(path, ".sem"), "/")
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	tc := &ThreeComponent{
		Name: name,
		X:    &Trace{Name: name + ".X"},
		Y:    &Trace{Name: name + ".Y"},
		Z:    &Trace{Name: name + ".Z"},
	}
	var t0, t1 float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 4 {
			return nil, fmt.Errorf("seismo: %s line %d: %d fields, want 4", path, line+1, len(fields))
		}
		vals := make([]float64, 4)
		for i, s := range fields {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("seismo: %s line %d: %w", path, line+1, err)
			}
			vals[i] = v
		}
		switch line {
		case 0:
			t0 = vals[0]
		case 1:
			t1 = vals[0]
		}
		tc.X.Data = append(tc.X.Data, vals[1])
		tc.Y.Data = append(tc.Y.Data, vals[2])
		tc.Z.Data = append(tc.Z.Data, vals[3])
		line++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line >= 2 {
		dt := t1 - t0
		tc.X.Dt, tc.Y.Dt, tc.Z.Dt = dt, dt, dt
	}
	return tc, nil
}

// WriteSEM writes the three components in the .sem ASCII format.
func WriteSEM(w io.Writer, tc *ThreeComponent) error {
	n := len(tc.X.Data)
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%12.4f %14.6e %14.6e %14.6e\n",
			float64(i+1)*tc.X.Dt, tc.X.Data[i], tc.Y.Data[i], tc.Z.Data[i]); err != nil {
			return err
		}
	}
	return nil
}
