package seismo

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// sine returns a trace containing sin(2 pi f t), n samples at dt.
func sine(f, dt float64, n int) *Trace {
	t := &Trace{Name: "sine", Dt: dt, Data: make([]float64, n)}
	for i := range t.Data {
		t.Data[i] = math.Sin(2 * math.Pi * f * float64(i) * dt)
	}
	return t
}

func TestPeakAndRMS(t *testing.T) {
	tr := &Trace{Dt: 1, Data: []float64{3, -4, 0}}
	if tr.PeakAmplitude() != 4 {
		t.Errorf("peak %v", tr.PeakAmplitude())
	}
	want := math.Sqrt(25.0 / 3.0)
	if math.Abs(tr.RMS()-want) > 1e-12 {
		t.Errorf("rms %v want %v", tr.RMS(), want)
	}
	if (&Trace{}).RMS() != 0 {
		t.Error("empty rms")
	}
}

func TestDetrendRemovesLine(t *testing.T) {
	tr := &Trace{Dt: 0.1, Data: make([]float64, 100)}
	for i := range tr.Data {
		tr.Data[i] = 3 + 0.25*float64(i)
	}
	tr.Detrend()
	for i, v := range tr.Data {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual %g at %d", v, i)
		}
	}
}

func TestTaperEndsGoToZero(t *testing.T) {
	tr := &Trace{Dt: 1, Data: make([]float64, 100)}
	for i := range tr.Data {
		tr.Data[i] = 1
	}
	tr.Taper(0.1)
	if tr.Data[0] != 0 || tr.Data[99] != 0 {
		t.Error("ends not tapered to zero")
	}
	if tr.Data[50] != 1 {
		t.Error("middle modified")
	}
	// Monotone ramp on the taper.
	for i := 1; i < 10; i++ {
		if tr.Data[i] < tr.Data[i-1] {
			t.Fatal("taper not monotone")
		}
	}
}

// Integrating then differentiating a smooth signal returns it.
func TestIntegrateDifferentiateRoundTrip(t *testing.T) {
	tr := sine(0.5, 0.01, 400)
	orig := tr.Clone()
	tr.Integrate()
	tr.Differentiate()
	// Skip the ends (one-sided stencils).
	for i := 5; i < len(tr.Data)-5; i++ {
		if math.Abs(tr.Data[i]-orig.Data[i]) > 5e-3 {
			t.Fatalf("round trip error %g at %d", tr.Data[i]-orig.Data[i], i)
		}
	}
}

// A low-pass filter must pass a low-frequency sine nearly unchanged and
// crush a high-frequency one.
func TestLowpassSelectivity(t *testing.T) {
	low := sine(0.1, 0.01, 2000)
	high := sine(20, 0.01, 2000)
	if err := low.Lowpass(1.0); err != nil {
		t.Fatal(err)
	}
	if err := high.Lowpass(1.0); err != nil {
		t.Fatal(err)
	}
	// Compare RMS over the second half (after transients).
	half := func(tr *Trace) *Trace {
		return &Trace{Dt: tr.Dt, Data: tr.Data[len(tr.Data)/2:]}
	}
	if r := half(low).RMS(); r < 0.6 {
		t.Errorf("passband attenuated to RMS %v", r)
	}
	if r := half(high).RMS(); r > 0.02 {
		t.Errorf("stopband leaked RMS %v", r)
	}
}

func TestHighpassSelectivity(t *testing.T) {
	low := sine(0.05, 0.01, 4000)
	high := sine(10, 0.01, 4000)
	if err := low.Highpass(1.0); err != nil {
		t.Fatal(err)
	}
	if err := high.Highpass(1.0); err != nil {
		t.Fatal(err)
	}
	half := func(tr *Trace) *Trace {
		return &Trace{Dt: tr.Dt, Data: tr.Data[len(tr.Data)/2:]}
	}
	if r := half(high).RMS(); r < 0.6 {
		t.Errorf("passband attenuated to RMS %v", r)
	}
	if r := half(low).RMS(); r > 0.02 {
		t.Errorf("stopband leaked RMS %v", r)
	}
}

func TestBandpassValidation(t *testing.T) {
	tr := sine(1, 0.01, 100)
	if err := tr.Bandpass(2, 1); err == nil {
		t.Error("inverted band accepted")
	}
	if err := tr.Lowpass(100); err == nil {
		t.Error("corner above Nyquist accepted")
	}
	if err := tr.Highpass(-1); err == nil {
		t.Error("negative corner accepted")
	}
}

func TestResample(t *testing.T) {
	tr := sine(0.5, 0.01, 1000)
	down, err := tr.Resample(0.04)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(down.Duration()-tr.Duration()) > 0.1 {
		t.Errorf("duration changed: %v vs %v", down.Duration(), tr.Duration())
	}
	// Values still on the sine to linear-interp accuracy.
	for i := 10; i < len(down.Data)-10; i++ {
		want := math.Sin(2 * math.Pi * 0.5 * float64(i) * down.Dt)
		if math.Abs(down.Data[i]-want) > 5e-3 {
			t.Fatalf("resampled value off at %d: %v vs %v", i, down.Data[i], want)
		}
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("zero dt accepted")
	}
}

// Cross-correlation must recover a known time shift.
func TestCrossCorrelateRecoversShift(t *testing.T) {
	const dt = 0.01
	mk := func(t0 float64) *Trace {
		tr := &Trace{Dt: dt, Data: make([]float64, 1000)}
		for i := range tr.Data {
			x := (float64(i)*dt - t0) / 0.2
			tr.Data[i] = math.Exp(-x * x)
		}
		return tr
	}
	a := mk(3.0)
	b := mk(3.75) // b delayed by 0.75 s
	lag, corr, err := CrossCorrelate(a, b, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lag-0.75) > dt {
		t.Errorf("lag %v want 0.75", lag)
	}
	if corr < 0.999 {
		t.Errorf("correlation %v", corr)
	}
}

// Property: the autocorrelation peak is at zero lag with value 1.
func TestAutocorrelationProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		freq := 0.1 + float64(seed%20)/10
		a := sine(freq, 0.01, 500)
		a.Taper(0.2)
		lag, corr, err := CrossCorrelate(a, a, 0.5)
		return err == nil && lag == 0 && math.Abs(corr-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMisfitL2(t *testing.T) {
	a := sine(1, 0.01, 500)
	if m, err := MisfitL2(a, a.Clone()); err != nil || m != 0 {
		t.Errorf("self misfit %v err %v", m, err)
	}
	b := a.Clone()
	for i := range b.Data {
		b.Data[i] *= 1.1
	}
	m, err := MisfitL2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-0.1) > 1e-9 {
		t.Errorf("10%% amplitude misfit measured as %v", m)
	}
}

func TestSEMRoundTrip(t *testing.T) {
	tc := &ThreeComponent{
		Name: "TEST",
		X:    sine(0.3, 0.05, 200),
		Y:    sine(0.4, 0.05, 200),
		Z:    sine(0.5, 0.05, 200),
	}
	var buf bytes.Buffer
	if err := WriteSEM(&buf, tc); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "TEST.sem")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSEM(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "TEST" {
		t.Errorf("name %q", got.Name)
	}
	if math.Abs(got.X.Dt-0.05) > 1e-9 {
		t.Errorf("dt %v", got.X.Dt)
	}
	if len(got.X.Data) != 200 {
		t.Fatalf("%d samples", len(got.X.Data))
	}
	// ASCII has 6 significant digits.
	for i := range got.X.Data {
		if math.Abs(got.X.Data[i]-tc.X.Data[i]) > 1e-6 {
			t.Fatalf("X sample %d: %v vs %v", i, got.X.Data[i], tc.X.Data[i])
		}
	}
}

func TestReadSEMErrors(t *testing.T) {
	if _, err := ReadSEM(filepath.Join(t.TempDir(), "missing.sem")); err == nil {
		t.Error("missing file read")
	}
	path := filepath.Join(t.TempDir(), "bad.sem")
	os.WriteFile(path, []byte("1.0 2.0\n"), 0o644)
	if _, err := ReadSEM(path); err == nil {
		t.Error("malformed line accepted")
	}
	path2 := filepath.Join(t.TempDir(), "nan.sem")
	os.WriteFile(path2, []byte("1.0 x 2.0 3.0\n"), 0o644)
	if _, err := ReadSEM(path2); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func BenchmarkBandpass(b *testing.B) {
	tr := sine(0.5, 0.01, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := tr.Clone()
		if err := cp.Bandpass(0.1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossCorrelate(b *testing.B) {
	a := sine(0.5, 0.01, 2000)
	c := sine(0.5, 0.01, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CrossCorrelate(a, c, 1); err != nil {
			b.Fatal(err)
		}
	}
}
