// Command perfmodel prints the analytic performance models of the
// paper's section 5 — the machine catalog, the reproduced section 6
// production-run table, and the model-form predictions at the paper's
// scales — without running the solver (see cmd/paperfigs for the
// measured counterparts).
package main

import (
	"flag"
	"fmt"
	"math"

	"specglobe/internal/perfmodel"
)

func main() {
	var (
		showMachines = flag.Bool("machines", true, "print the machine catalog")
		showTable6   = flag.Bool("table6", true, "print the reproduced section 6 table")
		showAnchors  = flag.Bool("anchors", true, "print the resolution/period anchors")
	)
	flag.Parse()

	if *showMachines {
		fmt.Println("Machine catalog (section 5) with roofline sustained-performance model:")
		fmt.Printf("  %-9s %-6s %8s %9s %9s %9s %10s\n",
			"machine", "site", "cores", "GHz", "peak/core", "BW/core", "sust/core")
		for _, m := range perfmodel.Catalog() {
			fmt.Printf("  %-9s %-6s %8d %9.1f %8.2fG %8.2fG %9.2fG\n",
				m.Name, m.Site, m.TotalCores, m.ClockGHz,
				m.PeakGflopsPerCore, m.MemBWPerCoreGBs, m.SustainedGflopsPerCore())
		}
		fmt.Printf("  calibration: %.0f%% of peak compute ceiling, %.2f flop/byte intensity\n\n",
			100*perfmodel.CPUEfficiency, perfmodel.ArithmeticIntensity)
	}

	if *showTable6 {
		fmt.Println("Section 6 production runs, model vs paper (Tflops):")
		fmt.Print(perfmodel.FormatTable6(perfmodel.Table6(nil)))
		fmt.Println()
	}

	if *showAnchors {
		fmt.Println("Resolution/period anchors (figure 5 caption: res = 256*17/period):")
		for _, p := range []float64{17, 6.8, 3.5, 3.0, 2.52, 2.0, 1.94, 1.84, 1.0} {
			res := perfmodel.PeriodToResolution(p)
			fmt.Printf("  period %6.2f s  ->  NEX_XI %6.0f\n", p, math.Round(res))
		}
		fmt.Println()
		fmt.Println("Paper milestones: 3.5 s (Earth Simulator 2003), 2.52 s (Kraken 17K),")
		fmt.Println("1.94 s (Jaguar 29K), 1.84 s (Ranger 32K — the 2-second barrier broken)")
	}
}
