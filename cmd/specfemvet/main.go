// Command specfemvet is the repository's custom vet tool: it runs the
// internal/analysis suite (haloreq, flopaudit, determinism, poolsafety,
// phasepair — see DESIGN.md#invariants-as-analyzers) over type-checked
// packages so CI fails on an invariant-violating pattern instead of a
// flaky test.
//
// It speaks the go command's -vettool protocol (the same contract
// x/tools' unitchecker implements, rebuilt here on the standard library
// because the build environment is hermetic):
//
//	go build -o specfemvet ./cmd/specfemvet
//	go vet -vettool=$PWD/specfemvet ./...
//
// Under -vettool the go command invokes the binary once per package
// with a JSON config file argument (ending in .cfg) that lists the
// package's sources and the export data of its dependencies; -V=full
// and -flags are the protocol's identification and flag-discovery
// handshakes. Invoked any other way, specfemvet drives itself: it
// re-executes `go vet -vettool=<self> <args>` so `specfemvet ./...`
// works directly.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"specglobe/internal/analysis"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		// Flag discovery: no tool-specific flags.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(drive(args))
}

// printVersion implements the -V=full handshake: the go command uses
// the line as the tool's cache fingerprint, so it must change when the
// binary does — hash the executable, the way unitchecker does.
func printVersion() {
	prog := os.Args[0]
	h := sha256.New()
	if f, err := os.Open(prog); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel specfemvet buildID=%02x\n", prog, string(h.Sum(nil)[:12]))
}

// drive re-executes the go command against this binary, making plain
// `specfemvet ./...` equivalent to `go vet -vettool=specfemvet ./...`.
func drive(args []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "specfemvet: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "specfemvet: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig is the JSON the go command writes for each analyzed
// package (the unitchecker.Config contract).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runUnit analyzes one package from a -vettool config file and returns
// the process exit code: 0 clean, 1 tool error, 2 diagnostics.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "specfemvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "specfemvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The analyzers export no cross-package facts, but the protocol
	// requires the facts file to exist for downstream packages.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintf(os.Stderr, "specfemvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Dependencies resolve through the export data the go command
	// already compiled (PackageFile), keyed by canonical package path
	// (ImportMap translates source-level import paths).
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		path := importPath
		if p, ok := cfg.ImportMap[importPath]; ok {
			path = p
		}
		return compImp.Import(path)
	})

	info := analysis.NewInfo()
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: strings.TrimSuffix(cfg.GoVersion, "."),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "specfemvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Analyze the non-test sources only: the [pkg.test] variants reuse
	// the same files and would double-report, and the invariants are
	// production-code contracts.
	var checkFiles []*ast.File
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		checkFiles = append(checkFiles, f)
	}
	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: checkFiles,
		Types: tpkg,
		Info:  info,
	}
	diags, err := analysis.Run(pkg, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "specfemvet: %v\n", err)
		return 1
	}
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
		return 2
	}
	return 0
}
