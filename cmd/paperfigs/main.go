// Command paperfigs regenerates every table and figure of the paper's
// evaluation from live runs of the Go mesher and solver at laptop
// scale, fitting the section 5 model forms and extrapolating to the
// paper's scales. Each experiment prints a block whose id matches the
// per-experiment index in DESIGN.md and EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
)

type experiment struct {
	id   string
	desc string
	run  func(quick bool) (fmt.Stringer, error)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	var (
		only  = flag.String("only", "", "comma-separated experiment ids (default: all)")
		quick = flag.Bool("quick", false, "smaller sizes for a fast smoke run")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	exps := experimentList()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		fmt.Printf("==== %s: %s\n", e.id, e.desc)
		res, err := e.run(*quick)
		if err != nil {
			log.Fatalf("%s: %v", e.id, err)
		}
		fmt.Println(res)
	}
}
