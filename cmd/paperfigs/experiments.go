package main

import (
	"fmt"

	"specglobe/internal/experiments"
)

// stringerFunc adapts a plain string to fmt.Stringer.
type stringerFunc string

func (s stringerFunc) String() string { return string(s) }

// experimentList wires every experiment id of DESIGN.md to its runner.
// The quick flag selects smaller sweeps for smoke runs.
func experimentList() []experiment {
	return []experiment{
		{
			id: "FIG5", desc: "disk space vs resolution (legacy mesher->solver database)",
			run: func(quick bool) (fmt.Stringer, error) {
				nex := []int{4, 8, 12, 16}
				if quick {
					nex = []int{4, 8}
				}
				return experiments.Fig5(nex)
			},
		},
		{
			id: "FIG6", desc: "total communication time vs core count",
			run: func(quick bool) (fmt.Stringer, error) {
				nex := []int{8, 12}
				nproc := []int{1, 2}
				steps := 8
				if quick {
					nex = []int{4, 8}
					steps = 4
				}
				return experiments.Fig6(nex, nproc, steps)
			},
		},
		{
			id: "FIG7", desc: "total runtime vs resolution (fixed steps)",
			run: func(quick bool) (fmt.Stringer, error) {
				nex := []int{4, 6, 8, 12, 16}
				steps := 8
				if quick {
					nex = []int{4, 8}
					steps = 4
				}
				return experiments.Fig7(nex, steps)
			},
		},
		{
			id: "COMM%", desc: "communication fraction of the solver main loop",
			run: func(quick bool) (fmt.Stringer, error) {
				nex := []int{8}
				nproc := []int{1, 2}
				steps := 8
				if quick {
					nex = []int{4}
					steps = 4
				}
				return experiments.CommFraction(nex, nproc, steps)
			},
		},
		{
			id: "OVERLAP", desc: "exposed comm: blocking vs overlapped vs pipelined fluid-solid schedule",
			run: func(quick bool) (fmt.Stringer, error) {
				nex := []int{8, 12}
				nproc := []int{1, 2}
				steps := 8
				if quick {
					nex = []int{4}
					nproc = []int{1}
					steps = 4
				}
				r, err := experiments.Overlap(nex, nproc, steps)
				if err != nil {
					return nil, err
				}
				// Per-machine extrapolation: the same schedule under each
				// catalog interconnect.
				m, err := experiments.OverlapMachines(nex[0], nproc[0], steps)
				if err != nil {
					return nil, err
				}
				// Joint sweep: workers x doubling x interconnect together.
				// nex 8 is the smallest resolution that admits the standard
				// two doubling levels, so the joint table pins it even when
				// quick shrinks the main sweep.
				workers := []int{1, 4}
				if quick {
					workers = []int{1}
				}
				j, err := experiments.OverlapJoint(8, 1, steps, workers,
					[]float64{5200e3, 3000e3})
				if err != nil {
					return nil, err
				}
				return stringerFunc(r.String() + m.String() + j.String()), nil
			},
		},
		{
			id: "LTS", desc: "clustered local time stepping: uniform vs doubled vs doubled+LTS on PREM",
			run: func(quick bool) (fmt.Stringer, error) {
				doublings := []float64{5200e3, 3000e3}
				configs := [][2]int{{8, 1}, {16, 2}}
				steps := 8
				if quick {
					configs = [][2]int{{8, 1}}
					steps = 4
				}
				return experiments.LTSAblation(configs, doublings, steps)
			},
		},
		{
			id: "HYBRID", desc: "rank x worker force kernels: speedup vs exposed comm",
			run: func(quick bool) (fmt.Stringer, error) {
				nex, nproc, steps := 8, 1, 8
				workers := []int{1, 2, 4, 8}
				if quick {
					nex, steps = 4, 4
					workers = []int{1, 2, 4}
				}
				return experiments.Hybrid(nex, nproc, workers, steps)
			},
		},
		{
			id: "MESHDBL", desc: "mesh doubling layers: element count, halo S/V, exposed comm",
			run: func(quick bool) (fmt.Stringer, error) {
				// Doubling radii sit in the mid-mantle and outer core of
				// the homogeneous Earth-like test model.
				doublings := []float64{5200e3, 3000e3}
				configs := [][2]int{{8, 1}, {16, 2}}
				steps := 8
				if quick {
					configs = [][2]int{{8, 1}}
					steps = 4
				}
				return experiments.MeshDoubling(configs, doublings, steps)
			},
		},
		{
			id: "MESHRES", desc: "wavelength-derived vs hand-tuned doubling schedules (elements, halo, min pts/wavelength)",
			run: func(quick bool) (fmt.Stringer, error) {
				// Hand-tuned radii as in MESHDBL; the derived schedule
				// comes from the PREM wavelength profile per NEX.
				manual := []float64{5200e3, 3000e3}
				configs := [][2]int{{8, 1}, {16, 2}}
				steps := 6
				if quick {
					configs = [][2]int{{8, 1}}
					steps = 4
				}
				return experiments.MeshResolution(configs, manual, steps)
			},
		},
		{
			id: "MEM37", desc: "memory model + section 6 table (TAB6)",
			run: func(quick bool) (fmt.Stringer, error) {
				nex := []int{4, 8, 12, 16}
				if quick {
					nex = []int{4, 8}
				}
				return experiments.Memory(nex)
			},
		},
		{
			id: "ATT1.8", desc: "attenuation on/off cost factor",
			run: func(quick bool) (fmt.Stringer, error) {
				nex, steps := 8, 10
				if quick {
					nex, steps = 4, 6
				}
				return experiments.Attenuation(nex, steps)
			},
		},
		{
			id: "MESH2X", desc: "merged single-pass vs legacy two-pass mesher",
			run: func(quick bool) (fmt.Stringer, error) {
				nex := 12
				if quick {
					nex = 8
				}
				return experiments.Mesher(nex)
			},
		},
		{
			id: "IOMERGE", desc: "legacy file database vs merged in-memory handoff",
			run: func(quick bool) (fmt.Stringer, error) {
				nex := 8
				if quick {
					nex = 4
				}
				return experiments.IOModes(nex)
			},
		},
		{
			id: "KERNROOF", desc: "kernel x workers roofline sweep: steps/s, Gflop/s, AI, % of peak",
			run: func(quick bool) (fmt.Stringer, error) {
				boxN, globeNex, steps := 6, 8, 20
				workers := []int{1, 4}
				if quick {
					boxN, steps = 4, 4
					workers = []int{1}
				}
				return experiments.KernRoof(boxN, globeNex, steps, workers)
			},
		},
		{
			id: "BATCH", desc: "multi-source ensemble batching: S x kernel, source-steps/s, AI vs S",
			run: func(quick bool) (fmt.Stringer, error) {
				boxN, globeNex, steps := 10, 8, 16
				sizes := []int{1, 2, 4, 8}
				if quick {
					boxN, steps = 4, 4
					sizes = []int{1, 2}
				}
				return experiments.BatchAblation(boxN, globeNex, steps, sizes, 1)
			},
		},
		{
			id: "SERVICE", desc: "simulation-as-a-service daemon vs sequential one-shot runs: jobs/s, src-steps/s",
			run: func(quick bool) (fmt.Stringer, error) {
				nex, steps, jobs, maxBatch := 8, 12, 8, 4
				if quick {
					nex, steps, jobs, maxBatch = 4, 6, 4, 2
				}
				return experiments.Service(nex, steps, jobs, maxBatch, 1)
			},
		},
		{
			id: "SSE20", desc: "force-kernel variants: vec4 vs scalar vs BLAS",
			run: func(quick bool) (fmt.Stringer, error) {
				nex, steps := 8, 10
				if quick {
					nex, steps = 4, 6
				}
				return experiments.Kernels(nex, steps)
			},
		},
		{
			id: "CM5", desc: "Cuthill-McKee element sorting vs natural/scrambled order",
			run: func(quick bool) (fmt.Stringer, error) {
				nex, steps := 8, 8
				if quick {
					nex, steps = 4, 4
				}
				return experiments.Renumbering(nex, steps)
			},
		},
		{
			id: "STALOC", desc: "legacy nonlinear vs nearest-point station location",
			run: func(quick bool) (fmt.Stringer, error) {
				nex, n := 8, 12
				if quick {
					nex, n = 4, 6
				}
				return experiments.StationLocation(nex, n)
			},
		},
		{
			id: "LOADBAL", desc: "element load balance across ranks",
			run: func(quick bool) (fmt.Stringer, error) {
				nex, nproc := 8, 2
				if quick {
					nex, nproc = 4, 2
				}
				s, err := experiments.LoadBalance(nex, nproc)
				if err != nil {
					return nil, err
				}
				return stringerFunc(fmt.Sprintf(
					"LOADBAL: min %d, max %d, mean %.1f elements/rank -> imbalance %.3f (paper: \"excellent load balancing\")\n",
					s.MinElems, s.MaxElems, s.MeanElems, s.Imbalance)), nil
			},
		},
	}
}
