package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"specglobe/internal/service"
)

// runCtl is the specfemctl client mode (`specfem ctl ...`): it dials a
// running specfemd socket, submits one scenario job, and appends each
// streamed chunk to its station's .sem file the moment it arrives —
// the files grow monotonically with the integrator and are complete
// when the job's done line lands; there is no end-of-run rewrite.
func runCtl(args []string) {
	fs := flag.NewFlagSet("specfem ctl", flag.ExitOnError)
	var (
		socket  = fs.String("socket", "/tmp/specfemd.sock", "specfemd unix socket")
		model   = fs.String("model", "prem", "earth model: prem, prem_noocean, earthlike")
		nex     = fs.Int("nex", 8, "NEX_XI: spectral elements per chunk side")
		nproc   = fs.Int("nproc", 1, "NPROC_XI: mesh slices per chunk side")
		steps   = fs.Int("steps", 100, "number of time steps")
		lat     = fs.Float64("lat", -27.0, "event latitude (deg)")
		lon     = fs.Float64("lon", -63.0, "event longitude (deg)")
		depth   = fs.Float64("depth", 150e3, "event depth (m)")
		m0      = fs.Float64("m0", 1e20, "scalar moment (N*m)")
		halfDur = fs.Float64("halfduration", 20, "source half duration (s)")
		kernel  = fs.String("kernel", "", "force kernel: vec4, scalar, blas, fused")
		lts     = fs.Bool("lts", false, "clustered local time stepping")
		stats   = fs.String("stations", "ANMO,HRV,KIP", "comma-separated reference station names")
		out     = fs.String("out", "seismograms", "directory for streamed ASCII seismograms")
		name    = fs.String("name", "ctl-job", "job name")
	)
	fs.Parse(args)

	var stSpecs []service.StationSpec
	for _, n := range strings.Split(*stats, ",") {
		if n = strings.TrimSpace(n); n != "" {
			stSpecs = append(stSpecs, service.StationSpec{Name: n})
		}
	}
	spec := service.JobSpec{
		Name: *name, Model: *model, NexXi: *nex, NProcXi: *nproc,
		Steps: *steps, Kernel: *kernel, LTS: *lts,
		Event: &service.EventSpec{
			LatDeg: *lat, LonDeg: *lon, DepthM: *depth,
			Mrr: *m0, Mtt: -*m0 / 2, Mpp: -*m0 / 2,
			HalfDurationSec: *halfDur,
		},
		Stations: stSpecs,
	}

	conn, err := net.DialTimeout("unix", *socket, 5*time.Second)
	if err != nil {
		log.Fatalf("dialing %s: %v (is specfemd running?)", *socket, err)
	}
	defer conn.Close()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)
	if err := enc.Encode(service.Request{Op: "submit", Job: &spec}); err != nil {
		log.Fatal(err)
	}

	// Streamed chunks append to open per-station files; samples hit
	// disk as the integrator advances.
	files := map[string]*os.File{}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	jobID := ""
	for {
		var r service.Response
		if err := dec.Decode(&r); err != nil {
			log.Fatalf("reading response: %v", err)
		}
		switch r.Type {
		case "accepted":
			jobID = r.ID
			fmt.Printf("accepted as %s (key %s)\n", r.ID, r.Key)
		case "chunk":
			f := files[r.Station]
			if f == nil {
				f, err = os.Create(filepath.Join(*out, r.Station+".sem"))
				if err != nil {
					log.Fatal(err)
				}
				files[r.Station] = f
			}
			for i := range r.X {
				fmt.Fprintf(f, "%12.4f %14.6e %14.6e %14.6e\n",
					float64(r.Start+i+1)*r.Dt, r.X[i], r.Y[i], r.Z[i])
			}
		case "done":
			st := r.Status
			if st == nil || st.State != service.StateDone {
				log.Fatalf("job %s failed: %s: %s", jobID, r.Code, r.Error)
			}
			fmt.Printf("done: %d samples/station, batch S=%d, %.1f src-steps/s\n",
				st.Samples, st.BatchSize, st.SourceStepsPerSec)
			fmt.Printf("wrote %d streamed seismograms to %s\n", len(files), *out)
			return
		case "error":
			log.Fatalf("%s: %s", r.Code, r.Error)
		}
	}
}
