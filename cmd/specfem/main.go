// Command specfem runs a merged mesher+solver global simulation — the
// equivalent of the paper's single merged application (section 4.1).
//
// Example:
//
//	specfem -nex 8 -nproc 1 -model prem -steps 200 -stations 12 \
//	        -lat -27 -lon -63 -depth 150e3 -out seismograms/
//
// The ctl subcommand is the specfemctl client mode: it submits the
// scenario to a running specfemd daemon over its unix socket and
// appends the streamed seismogram chunks to .sem files as they arrive:
//
//	specfem ctl -socket /tmp/specfemd.sock -nex 8 -steps 200 -out seismograms/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"specglobe/internal/core"
	"specglobe/internal/earthmodel"
	"specglobe/internal/perfmodel"
	"specglobe/internal/solver"
	"specglobe/internal/stations"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specfem: ")

	// `specfem ctl ...` is the specfemctl client mode: submit the
	// scenario to a running specfemd instead of solving in-process.
	if len(os.Args) > 1 && os.Args[1] == "ctl" {
		runCtl(os.Args[2:])
		return
	}

	var (
		nex      = flag.Int("nex", 8, "NEX_XI: spectral elements per chunk side")
		nproc    = flag.Int("nproc", 1, "NPROC_XI: mesh slices per chunk side (ranks = 6*nproc^2)")
		modelStr = flag.String("model", "prem", "earth model: prem, prem_noocean, homogeneous")
		steps    = flag.Int("steps", 100, "number of time steps")
		record   = flag.Float64("seconds", 0, "simulated seconds (overrides -steps when > 0)")
		nstat    = flag.Int("stations", 8, "number of synthetic global stations (0 = reference GSN subset)")
		lat      = flag.Float64("lat", -27.0, "event latitude (deg)")
		lon      = flag.Float64("lon", -63.0, "event longitude (deg)")
		depth    = flag.Float64("depth", 150e3, "event depth (m)")
		m0       = flag.Float64("m0", 1e20, "scalar moment (N*m)")
		halfDur  = flag.Float64("halfduration", 20, "source half duration (s)")
		att      = flag.Bool("attenuation", false, "enable attenuation")
		rot      = flag.Bool("rotation", false, "enable rotation (Coriolis)")
		grav     = flag.Bool("gravity", false, "enable background gravity")
		ocean    = flag.Bool("oceans", false, "enable ocean load")
		snap     = flag.Bool("snap-stations", false, "locate stations at nearest grid point (fast 4.4 mode)")
		kernel   = flag.String("kernel", "vec4", "force kernel: vec4, scalar, blas")
		legacyIO = flag.String("legacy-io", "", "write/read the mesh through a legacy file database in this directory")
		combined = flag.Bool("combined-halo", false, "combine crust/mantle and inner-core halo messages (33% fewer messages)")
		out      = flag.String("out", "", "directory for ASCII seismograms (empty = skip)")
	)
	flag.Parse()

	var model earthmodel.Model
	switch *modelStr {
	case "prem":
		model = earthmodel.NewPREM()
	case "prem_noocean":
		model = earthmodel.NewPREMNoOcean()
	case "homogeneous":
		h := earthmodel.NewHomogeneous(6371e3, earthmodel.Material{
			Rho: 5000, Vp: 10000, Vs: 5500, Qmu: 300, Qkappa: 57823,
		})
		h.ICBRadius = 1221.5e3
		h.CMBRadius = 3480e3
		model = h
	default:
		log.Fatalf("unknown model %q", *modelStr)
	}

	var kv solver.Kernel
	switch *kernel {
	case "vec4":
		kv = solver.KernelVec4
	case "scalar":
		kv = solver.KernelScalar
	case "blas":
		kv = solver.KernelBlas
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	var sts []stations.Station
	if *nstat > 0 {
		sts = stations.GlobalNetwork(*nstat)
	} else {
		sts = stations.ReferenceStations()
	}

	cfg := core.Config{
		NexXi: *nex, NProcXi: *nproc,
		Model:         model,
		Steps:         *steps,
		RecordSeconds: *record,
		Event: core.Event{
			Name: "cli-event", LatDeg: *lat, LonDeg: *lon, DepthM: *depth,
			Mrr: *m0, Mtt: -*m0 / 2, Mpp: -*m0 / 2,
			HalfDurationSec: *halfDur,
		},
		Stations:          sts,
		SnapStations:      *snap,
		Attenuation:       *att,
		Rotation:          *rot,
		Gravity:           *grav,
		OceanLoad:         *ocean,
		Kernel:            kv,
		CombinedSolidHalo: *combined,
	}
	if *record > 0 {
		cfg.Steps = 0
	}
	if *legacyIO != "" {
		cfg.LegacyIO = true
		cfg.LegacyDir = *legacyIO
	}

	rep, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mesh: %d ranks, %d elements, shortest period ~%.1f s (paper rule: %.1f s)\n",
		len(rep.Globe.Locals), rep.Globe.TotalElements(), rep.ShortestPeriod,
		perfmodel.ResolutionToPeriod(float64(*nex)))
	fmt.Printf("load balance: min %d / max %d elements per rank (imbalance %.3f)\n",
		rep.Load.MinElems, rep.Load.MaxElems, rep.Load.Imbalance)
	fmt.Printf("mesher: %v (%d pass(es));  handoff: %d files, %s\n",
		rep.MesherTime.Round(1e6), rep.Globe.BuildPasses, rep.IO.Files,
		perfmodel.HumanBytes(float64(rep.IO.Bytes)))
	fmt.Printf("solver: %d steps, dt=%.3f s, wall %v\n",
		rep.Result.Steps, rep.Result.Dt, rep.SolverTime.Round(1e6))
	fmt.Printf("worst station location error: %.1f m\n", rep.StationErrors)
	fmt.Print(rep.Result.Perf)

	if *out != "" {
		if err := core.WriteSeismograms(*out, rep.Result); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d seismograms to %s\n", len(rep.Result.Seismograms), *out)
	}
	_ = os.Stdout.Sync()
}
