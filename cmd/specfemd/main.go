// Command specfemd is the simulation daemon: it owns a keyed session
// cache of built meshes, accepts scenario jobs over a line-delimited
// JSON protocol (unix socket or stdio), groups compatible jobs into
// multi-source ensemble batches, and streams seismogram chunks back as
// the integrator advances. See DESIGN.md "Simulation as a service".
//
// Serve on a socket (specfem ctl is the matching client):
//
//	specfemd -socket /tmp/specfemd.sock -max-batch 4 -window 50ms
//
// Serve one connection on stdin/stdout:
//
//	specfemd -stdio
//
// Self-test (used by CI): run an in-process daemon over an in-memory
// connection, submit 3 jobs (two sharing a compatibility key, one
// apart), and verify every streamed seismogram reassembles
// bit-identical to its direct one-shot core.Run:
//
//	specfemd -selftest
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"time"

	"specglobe/internal/core"
	"specglobe/internal/service"
	"specglobe/internal/solver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specfemd: ")

	var (
		socket   = flag.String("socket", "", "unix socket path to listen on")
		stdio    = flag.Bool("stdio", false, "serve a single session on stdin/stdout")
		selftest = flag.Bool("selftest", false, "run the in-process smoke test and exit")
		maxBatch = flag.Int("max-batch", 4, "max ensemble size S per batch")
		window   = flag.Duration("window", 50*time.Millisecond, "max wait before dispatching a partial batch")
		budgetMB = flag.Int64("mem-budget-mb", 0, "session cache budget in MiB of mesh (0 = unlimited)")
		workers  = flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
		chunk    = flag.Int("chunk", 32, "streamed samples per chunk")
	)
	flag.Parse()

	cfg := service.Config{
		MaxBatch:     *maxBatch,
		Window:       *window,
		MemoryBudget: *budgetMB << 20,
		Workers:      *workers,
		ChunkSamples: *chunk,
	}

	if *selftest {
		if err := runSelftest(cfg); err != nil {
			log.Fatalf("selftest FAILED: %v", err)
		}
		fmt.Println("selftest ok")
		return
	}

	d := service.New(cfg)
	defer d.Close()
	switch {
	case *stdio:
		if err := service.Serve(d, stdioConn{}); err != nil {
			log.Fatal(err)
		}
	case *socket != "":
		_ = os.Remove(*socket)
		l, err := net.Listen("unix", *socket)
		if err != nil {
			log.Fatal(err)
		}
		defer l.Close()
		log.Printf("listening on %s (max-batch %d, window %v)", *socket, *maxBatch, *window)
		if err := service.ListenAndServe(d, l); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -socket, -stdio or -selftest")
	}
}

// stdioConn adapts stdin/stdout to the io.ReadWriter Serve wants.
type stdioConn struct{}

func (stdioConn) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdioConn) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

// runSelftest exercises the full pipeline in process: daemon, wire
// protocol, batching, streaming, and the bit-identity contract.
func runSelftest(cfg service.Config) error {
	cfg.MaxBatch = 2
	cfg.Window = 50 * time.Millisecond
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	cfg.ChunkSamples = 4
	d := service.New(cfg)
	defer d.Close()

	client, server := net.Pipe()
	go func() {
		defer server.Close()
		_ = service.Serve(d, server)
	}()
	defer client.Close()

	job := func(name string, lat float64, steps int) service.JobSpec {
		return service.JobSpec{
			Name: name, Model: "earthlike", NexXi: 4, Steps: steps,
			Event: &service.EventSpec{
				LatDeg: lat, LonDeg: -63, DepthM: 150e3,
				Mrr: 1e20, Mtt: -0.5e20, Mpp: -0.5e20, Mrt: 0.3e20,
				HalfDurationSec: 20,
			},
			Stations: []service.StationSpec{{Name: "ANMO"}, {Name: "HRV"}},
		}
	}
	// Two jobs share a compatibility key (one S=2 ensemble), the third
	// differs in step count and runs apart.
	specs := []service.JobSpec{job("s1", -27, 8), job("s2", -20, 8), job("s3", -27, 12)}

	enc := json.NewEncoder(client)
	dec := json.NewDecoder(client)
	byID := map[string]service.JobSpec{}
	chunks := map[string][]solver.Chunk{}
	dones := map[string]service.JobStatus{}
	// net.Pipe is synchronous: submit from a goroutine while the main
	// loop drains responses, as a real client would.
	go func() {
		for i := range specs {
			if err := enc.Encode(service.Request{Op: "submit", Job: &specs[i]}); err != nil {
				return
			}
		}
	}()
	for len(dones) < len(specs) {
		var r service.Response
		if err := dec.Decode(&r); err != nil {
			return fmt.Errorf("reading response: %w", err)
		}
		switch r.Type {
		case "accepted":
			byID[r.ID] = specs[len(byID)] // accepted responses arrive in submit order
		case "chunk":
			chunks[r.ID] = append(chunks[r.ID], solver.Chunk{
				Name: r.Station, Start: r.Start, Dt: r.Dt,
				RecordEvery: r.RecordEvery, X: r.X, Y: r.Y, Z: r.Z, Last: r.Last,
			})
		case "done":
			if r.Status == nil || r.Status.State != service.StateDone {
				return fmt.Errorf("job %s failed: %+v", r.ID, r.Status)
			}
			dones[r.ID] = *r.Status
		case "error":
			return fmt.Errorf("wire error: %s: %s", r.Code, r.Error)
		}
	}

	batched := 0
	for id, st := range dones {
		sp := byID[id]
		got, err := reassemble(chunks[id])
		if err != nil {
			return fmt.Errorf("job %s (%s): %w", id, sp.Name, err)
		}
		dcfg, err := service.DirectConfig(sp, cfg.Workers)
		if err != nil {
			return err
		}
		rep, err := core.Run(dcfg)
		if err != nil {
			return fmt.Errorf("direct run of %s: %w", sp.Name, err)
		}
		if err := identical(rep.Result.Seismograms, got); err != nil {
			return fmt.Errorf("job %s (%s): %w", id, sp.Name, err)
		}
		if st.BatchSize == 2 {
			batched++
		}
		fmt.Printf("job %s (%s): %d stations, %d samples, S=%d, %.1f src-steps/s — streamed == direct\n",
			id, sp.Name, len(got), st.Samples, st.BatchSize, st.SourceStepsPerSec)
	}
	if batched != 2 {
		return fmt.Errorf("%d jobs rode the S=2 batch, want 2", batched)
	}
	return nil
}

// reassemble concatenates chunks per station, enforcing the
// append-only contract.
func reassemble(chs []solver.Chunk) (map[string]*solver.Seismogram, error) {
	out := map[string]*solver.Seismogram{}
	for _, ch := range chs {
		sg := out[ch.Name]
		if sg == nil {
			sg = &solver.Seismogram{Name: ch.Name, Dt: ch.Dt, RecordEvery: ch.RecordEvery}
			out[ch.Name] = sg
		}
		if ch.Start != len(sg.X) {
			return nil, fmt.Errorf("station %s: chunk at %d after %d samples (not append-only)", ch.Name, ch.Start, len(sg.X))
		}
		sg.X = append(sg.X, ch.X...)
		sg.Y = append(sg.Y, ch.Y...)
		sg.Z = append(sg.Z, ch.Z...)
	}
	return out, nil
}

// identical asserts bit-identity between the direct seismograms and
// the streamed reassembly, and that the signal is non-trivial.
func identical(want map[string]*solver.Seismogram, got map[string]*solver.Seismogram) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d stations streamed, want %d", len(got), len(want))
	}
	for name, w := range want {
		g := got[name]
		if g == nil || len(g.X) != len(w.X) {
			return fmt.Errorf("station %s: missing or wrong length", name)
		}
		peak := float32(0)
		for i := range w.X {
			if g.X[i] != w.X[i] || g.Y[i] != w.Y[i] || g.Z[i] != w.Z[i] {
				return fmt.Errorf("station %s sample %d: streamed != direct", name, i)
			}
			for _, v := range []float32{w.X[i], w.Y[i], w.Z[i]} {
				if v < 0 {
					v = -v
				}
				if v > peak {
					peak = v
				}
			}
		}
		if peak == 0 {
			return fmt.Errorf("station %s: all-zero trace, vacuous check", name)
		}
	}
	return nil
}

var _ io.ReadWriter = stdioConn{}
