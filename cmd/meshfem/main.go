// Command meshfem runs the mesher standalone, prints mesh statistics
// and optionally writes the legacy per-core file database — the
// MESHFEM3D half of the original two-program pipeline (section 4.1).
package main

import (
	"flag"
	"fmt"
	"log"

	"specglobe/internal/earthmodel"
	"specglobe/internal/mesh"
	"specglobe/internal/meshfem"
	"specglobe/internal/meshio"
	"specglobe/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshfem: ")

	var (
		nex     = flag.Int("nex", 8, "NEX_XI: elements per chunk side")
		nproc   = flag.Int("nproc", 1, "NPROC_XI: slices per chunk side")
		twoPass = flag.Bool("two-pass", false, "legacy mode: run the full generation twice (section 4.4)")
		outDir  = flag.String("out", "", "write the legacy per-core database to this directory")
	)
	flag.Parse()

	g, err := meshfem.Build(meshfem.Config{
		NexXi: *nex, NProcXi: *nproc,
		Model:            earthmodel.NewPREM(),
		TwoPassMaterials: *twoPass,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PREM globe mesh, NEX_XI=%d, NPROC_XI=%d -> %d ranks\n",
		*nex, *nproc, len(g.Locals))
	fmt.Printf("build passes: %d\n", g.BuildPasses)
	fmt.Printf("elements: %d total; grid points: %d (per-region DOF sites)\n",
		g.TotalElements(), g.TotalPoints())
	fmt.Printf("shortest resolvable period: ~%.1f s (paper rule 256*17/NEX = %.1f s)\n",
		g.ShortestPeriod, perfmodel.ResolutionToPeriod(float64(*nex)))
	fmt.Printf("stable time step (courant 0.3): %.4f s\n", g.StableDt(0.3))

	stats := mesh.ComputeLoadStats(g.Locals)
	fmt.Printf("load balance: min %d, max %d, mean %.1f elements/rank (imbalance %.3f)\n",
		stats.MinElems, stats.MaxElems, stats.MeanElems, stats.Imbalance)

	var memBytes int64
	for _, l := range g.Locals {
		memBytes += meshio.MeshBytes(l)
	}
	fmt.Printf("mesh memory: %s\n", perfmodel.HumanBytes(float64(memBytes)))

	for rank, p := range g.Plans {
		if rank > 2 && rank < len(g.Plans)-1 {
			continue // print a few representative ranks
		}
		fmt.Printf("rank %3d: %2d neighbors, %6d halo point slots\n",
			rank, p.NeighborCount(), p.BoundaryPoints())
	}

	if *outDir != "" {
		st, err := meshio.WriteAllRanks(*outDir, g.Locals, g.Plans)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("legacy database: %d files, %s in %s\n",
			st.Files, perfmodel.HumanBytes(float64(st.Bytes)), *outDir)
		fmt.Printf("(at 62,976 cores this mode writes %.2fM files — the section 4.1 bottleneck)\n",
			float64(meshio.LegacyFilesPerCore)*62976/1e6)
	}
}
