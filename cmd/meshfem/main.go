// Command meshfem runs the mesher standalone, prints mesh statistics
// and optionally writes the legacy per-core file database — the
// MESHFEM3D half of the original two-program pipeline (section 4.1).
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"specglobe/internal/earthmodel"
	"specglobe/internal/mesh"
	"specglobe/internal/meshfem"
	"specglobe/internal/meshio"
	"specglobe/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("meshfem: ")

	var (
		nex       = flag.Int("nex", 8, "NEX_XI: elements per chunk side")
		nproc     = flag.Int("nproc", 1, "NPROC_XI: slices per chunk side")
		twoPass   = flag.Bool("two-pass", false, "legacy mode: run the full generation twice (section 4.4)")
		outDir    = flag.String("out", "", "write the legacy per-core database to this directory")
		doublings = flag.String("doublings", "", "comma-separated doubling radii in km (e.g. 5200,3000)")
		auto      = flag.Bool("auto-doubling", false, "derive the doubling schedule from the PREM wavelength profile")
		period    = flag.Float64("period", 0, "auto-doubling target period in seconds (0: paper rule 256*17/NEX)")
		ppw       = flag.Float64("ppw", 0, "auto-doubling points-per-wavelength budget (0: the paper's 5)")
	)
	flag.Parse()

	cfg := meshfem.Config{
		NexXi: *nex, NProcXi: *nproc,
		Model:            earthmodel.NewPREM(),
		TwoPassMaterials: *twoPass,
	}
	for _, f := range strings.Split(*doublings, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		km, err := strconv.ParseFloat(f, 64)
		if err != nil {
			log.Fatalf("bad -doublings entry %q: %v", f, err)
		}
		cfg.Doublings = append(cfg.Doublings, km*1e3)
	}
	if *auto {
		cfg.AutoDoubling = &meshfem.AutoDoubling{TargetPeriodS: *period, PointsPerWavelength: *ppw}
	}
	g, err := meshfem.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PREM globe mesh, NEX_XI=%d, NPROC_XI=%d -> %d ranks\n",
		*nex, *nproc, len(g.Locals))
	if len(g.Cfg.Doublings) > 0 {
		how := "configured"
		if *auto && len(cfg.Doublings) == 0 {
			a := cfg.AutoDoubling.Resolved(*nex)
			how = fmt.Sprintf("derived from the wavelength profile (period %.0fs, budget %.1f pts/wavelength)",
				a.TargetPeriodS, a.PointsPerWavelength)
		}
		fmt.Printf("doubling radii (%s):", how)
		for _, d := range g.Cfg.Doublings {
			fmt.Printf(" %.0f km", d/1e3)
		}
		fmt.Println()
	}
	fmt.Printf("build passes: %d\n", g.BuildPasses)
	fmt.Printf("elements: %d total; grid points: %d (per-region DOF sites)\n",
		g.TotalElements(), g.TotalPoints())
	fmt.Printf("shortest resolvable period: ~%.1f s (paper rule 256*17/NEX = %.1f s)\n",
		g.ShortestPeriod, perfmodel.ResolutionToPeriod(float64(*nex)))
	fmt.Printf("stable time step (courant 0.3): %.4f s\n", g.StableDt(0.3))

	stats := mesh.ComputeLoadStats(g.Locals)
	fmt.Printf("load balance: min %d, max %d, mean %.1f elements/rank (imbalance %.3f)\n",
		stats.MinElems, stats.MaxElems, stats.MeanElems, stats.Imbalance)

	// Resolution accounting at the reported shortest period: how many
	// GLL points each layer puts on the shortest wavelength (the ~5
	// points-per-wavelength rule the mesh is sized by).
	rs := mesh.ComputeResolutionStats(g.Locals, g.ShortestPeriod)
	fmt.Printf("resolution at %.0f s: min %.2f pts/wavelength (worst element in %v at r=%.0f km), mean %.1f\n",
		g.ShortestPeriod, rs.MinPts, rs.Worst.Kind, rs.Worst.RadiusM/1e3, rs.MeanPts)
	// Per-layer stable-dt profile beside the resolution audit: dt/min is
	// the headroom clustered local time stepping converts into skipped
	// updates (a layer at 2^k times the governing dt can fire every
	// 2^k-th step).
	const courant = 0.3
	dts := g.LayerStableDts(courant)
	globalDt := g.StableDt(courant)
	fmt.Printf("  %-12s %9s %9s %5s %9s %9s %7s\n",
		"region", "r0 km", "r1 km", "nex", "min pts", "min dt", "dt/min")
	for i, lr := range g.LayerResolutions(g.ShortestPeriod) {
		tag := ""
		if lr.Doubling {
			tag = " (doubling)"
		}
		if lr.Cube {
			tag = " (central cube)"
		}
		fmt.Printf("  %-12v %9.0f %9.0f %5d %9.2f %8.3fs %6.2fx%s\n",
			lr.Region, lr.R0/1e3, lr.R1/1e3, lr.NexXi, lr.MinPts,
			dts[i].MinDt, dts[i].MinDt/globalDt, tag)
	}

	var memBytes int64
	for _, l := range g.Locals {
		memBytes += meshio.MeshBytes(l)
	}
	fmt.Printf("mesh memory: %s\n", perfmodel.HumanBytes(float64(memBytes)))

	for rank, p := range g.Plans {
		if rank > 2 && rank < len(g.Plans)-1 {
			continue // print a few representative ranks
		}
		fmt.Printf("rank %3d: %2d neighbors, %6d halo point slots\n",
			rank, p.NeighborCount(), p.BoundaryPoints())
	}

	if *outDir != "" {
		st, err := meshio.WriteAllRanks(*outDir, g.Locals, g.Plans)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("legacy database: %d files, %s in %s\n",
			st.Files, perfmodel.HumanBytes(float64(st.Bytes)), *outDir)
		fmt.Printf("(at 62,976 cores this mode writes %.2fM files — the section 4.1 bottleneck)\n",
			float64(meshio.LegacyFilesPerCore)*62976/1e6)
	}
}
