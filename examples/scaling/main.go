// Scaling: the section 5 study at laptop scale — sweep NPROC_XI at a
// fixed resolution (strong scaling of a fixed mesh over more simulated
// ranks) and report per-rank work, communication volume, and the IPM-
// style communication fraction that the paper found to stay below ~5%.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	"specglobe/internal/earthmodel"
	"specglobe/internal/mesh"
	"specglobe/internal/meshfem"
	"specglobe/internal/perfmodel"
	"specglobe/internal/solver"
)

func main() {
	log.SetFlags(0)

	model := earthmodel.NewHomogeneous(6371e3, earthmodel.Material{
		Rho: 5000, Vp: 10000, Vs: 5500, Qmu: 300, Qkappa: 57823,
	})
	model.ICBRadius = 1221.5e3
	model.CMBRadius = 3480e3

	const steps = 25
	fmt.Printf("scaling sweep (%d steps); paper comm fractions: 1.9%%-4.2%%\n", steps)
	fmt.Println("halo S/V = halo boundary points per element, mean over ranks (the")
	fmt.Println("surface-to-volume ratio mesh doubling changes; dbl rows coarsen the")
	fmt.Println("mesh 2x below 5200 km, and also below 3000 km where the slicing allows)")
	fmt.Println()
	fmt.Printf("%6s %6s %6s %10s %9s %12s %12s %10s %10s\n",
		"NEX", "NPROC", "ranks", "elem/rank", "halo S/V", "wall", "msgs", "MB sent", "comm frac")

	var samples []perfmodel.CommSample
	for _, sweep := range []struct {
		nex, nproc int
		doublings  []float64
		auto       bool
	}{
		{4, 1, nil, false}, {4, 2, nil, false}, {8, 1, nil, false}, {8, 2, nil, false},
		{8, 1, []float64{5200e3, 3000e3}, false}, {8, 2, []float64{5200e3}, false},
		{8, 1, nil, true}, // schedule derived from the wavelength profile
	} {
		nex, nproc := sweep.nex, sweep.nproc
		cfg := meshfem.Config{
			NexXi: nex, NProcXi: nproc, Model: model, Doublings: sweep.doublings,
		}
		if sweep.auto {
			cfg.AutoDoubling = &meshfem.AutoDoubling{}
		}
		g, err := meshfem.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if sweep.auto {
			fmt.Printf("auto row: derived doubling radii %v (wavelength profile, paper-rule period)\n",
				g.Cfg.Doublings)
		}
		loc, err := g.LocateLatLonDepth(0, 0, 120e3)
		if err != nil {
			log.Fatal(err)
		}
		const m0 = 1e20
		src := solver.Source{
			Rank: loc.Rank, Kind: loc.Kind, Elem: loc.Elem, Ref: loc.Ref,
			MomentTensor: [3][3]float64{{m0, 0, 0}, {0, m0, 0}, {0, 0, m0}},
			STF:          solver.GaussianSTF(10, 25),
		}
		t0 := time.Now()
		res, err := solver.Run(&solver.Simulation{
			Locals: g.Locals, Plans: g.Plans, Model: model,
			Sources: []solver.Source{src},
			Opts:    solver.Options{Steps: steps},
		})
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0)
		stats := mesh.ComputeLoadStats(g.Locals)
		halo := mesh.ComputeHaloStats(g.Locals, g.Plans)
		label := fmt.Sprintf("%6d", nex)
		if len(sweep.doublings) > 0 {
			label = fmt.Sprintf("%3ddbl", nex)
		}
		if sweep.auto {
			label = fmt.Sprintf("%3daut", nex)
		}
		fmt.Printf("%s %6d %6d %10.0f %9.2f %12v %12d %10.1f %9.2f%%\n",
			label, nproc, len(g.Locals), stats.MeanElems, halo.MeanRankSV,
			wall.Round(time.Millisecond),
			res.MPI.Messages, float64(res.MPI.BytesSent)/1e6,
			100*res.Perf.CommFraction)
		if len(sweep.doublings) == 0 && !sweep.auto {
			// The two-term model's res^2 halo scaling describes the
			// uniform mesh; doubled rows are shown but not fitted.
			samples = append(samples, perfmodel.CommSample{
				P: len(g.Locals), Res: float64(nex),
				TotalComm: res.Perf.TotalCommTime().Seconds(),
			})
		}
	}

	if cm, err := perfmodel.FitCommModel(samples); err == nil {
		fmt.Printf("\ncomm model fit: T = %.3g*res^2*sqrt(P) + %.3g*P\n", cm.C1, cm.C2)
		fmt.Println("per-core communication time (model) at the paper's scales:")
		for _, sc := range []struct {
			p   int
			res float64
		}{{12150, 1440}, {62000, 4848}} {
			fmt.Printf("  P=%6d res=%4.0f -> %.3g s/core (paper model: 599 s and 28K s on Franklin-class hardware)\n",
				sc.p, sc.res, cm.PerCoreComm(sc.p, sc.res))
		}
	}

	fmt.Println("\nNote: simulated ranks are goroutines on one machine, so absolute")
	fmt.Println("times differ from the paper; the scaling *shape* (compute-dominated,")
	fmt.Println("single-digit comm fraction) is the reproduced result.")
}
