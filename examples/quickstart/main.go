// Quickstart: the smallest complete global simulation — PREM Earth,
// one deep earthquake, three stations, merged mesher+solver — showing
// the public API end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"specglobe/internal/core"
	"specglobe/internal/stations"
)

func main() {
	log.SetFlags(0)

	// A magnitude ~7 deep event under South America, CMT style.
	event := core.Event{
		Name:   "quickstart-event",
		LatDeg: -27.0, LonDeg: -63.0, DepthM: 150e3,
		Mrr: 1.0e20, Mtt: -0.6e20, Mpp: -0.4e20,
		Mrt: 0.3e20, Mrp: -0.2e20, Mtp: 0.1e20,
		HalfDurationSec: 20,
	}
	fmt.Printf("event: %s  Mw=%.2f  depth=%.0f km\n",
		event.Name, event.MomentMagnitude(), event.DepthM/1e3)

	// Stations: one close to the event (the P wave reaches it within
	// the short demo window) and two teleseismic reference sites.
	sts := append([]stations.Station{
		{Name: "NEAR", Network: "XX", LatDeg: -24.5, LonDeg: -61.0},
	}, stations.ReferenceStations()[:2]...)

	rep, err := core.Run(core.Config{
		// NEX_XI=6 keeps this to a couple of minutes on a laptop core;
		// production runs in the paper use NEX_XI ~ 2176 to reach
		// 2-second periods.
		NexXi: 6, NProcXi: 1,
		Steps:    250,
		Event:    event,
		Stations: sts,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mesh: %d elements over %d ranks, shortest period ~%.0f s\n",
		rep.Globe.TotalElements(), len(rep.Globe.Locals), rep.ShortestPeriod)
	fmt.Printf("solver: %d steps at dt=%.2f s (%.0f s of wavefield) in %v\n",
		rep.Result.Steps, rep.Result.Dt,
		float64(rep.Result.Steps)*rep.Result.Dt, rep.SolverTime.Round(1e6))

	for name, sg := range rep.Result.Seismograms {
		peak := 0.0
		for i := range sg.X {
			for _, v := range []float32{sg.X[i], sg.Y[i], sg.Z[i]} {
				if a := float64(v); a > peak {
					peak = a
				} else if -a > peak {
					peak = -a
				}
			}
		}
		fmt.Printf("station %-5s peak displacement %.3e m over %d samples\n",
			name, peak, len(sg.X))
	}

	if err := core.WriteSeismograms("quickstart_output", rep.Result); err != nil {
		log.Fatal(err)
	}
	fmt.Println("seismograms written to quickstart_output/")
}
