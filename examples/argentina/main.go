// Argentina: the paper's section 6 scenario — "simulation of a few
// seconds of an earthquake in Argentina with attenuation turned on" —
// reproduced at laptop scale. A deep Mw~7 event under northern
// Argentina is run twice, attenuation off and on, with a global station
// set; the example reports the run-time factor (the paper measured
// 1.8x) and the amplitude reduction attenuation causes.
//
//	go run ./examples/argentina
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"specglobe/internal/core"
	"specglobe/internal/solver"
	"specglobe/internal/stations"
)

func main() {
	log.SetFlags(0)

	// Deep Argentina event, loosely modeled on the large 1994-style
	// deep-focus earthquakes under the region (CMT convention, N*m).
	event := core.Event{
		Name:   "argentina-deep",
		LatDeg: -26.5, LonDeg: -63.2, DepthM: 200e3,
		Mrr: 2.3e20, Mtt: -1.1e20, Mpp: -1.2e20,
		Mrt: 0.8e20, Mrp: -0.5e20, Mtp: 0.3e20,
		HalfDurationSec: 20,
	}
	sts := append(stations.ReferenceStations(), stations.GlobalNetwork(8)...)
	fmt.Printf("event %s: Mw %.2f at (%.1f, %.1f), depth %.0f km; %d stations\n",
		event.Name, event.MomentMagnitude(), event.LatDeg, event.LonDeg,
		event.DepthM/1e3, len(sts))
	for _, st := range sts[:4] {
		fmt.Printf("  %-5s at epicentral distance %.1f deg\n",
			st.Name, core.EpicentralDistanceDeg(event, st))
	}

	run := func(attenuation bool) (*core.Report, time.Duration) {
		t0 := time.Now()
		rep, err := core.Run(core.Config{
			NexXi: 6, NProcXi: 1,
			Steps:       150,
			Event:       event,
			Stations:    sts,
			Attenuation: attenuation,
			Rotation:    true,
			Gravity:     true,
			OceanLoad:   true,
			Kernel:      solver.KernelVec4,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep, time.Since(t0)
	}

	fmt.Println("\n-- elastic run (attenuation off) --")
	repOff, tOff := run(false)
	fmt.Printf("wall %v, sustained %.2f Gflop/s (model flops)\n",
		tOff.Round(time.Millisecond), repOff.Result.Perf.SustainedFlops/1e9)

	fmt.Println("\n-- anelastic run (attenuation on) --")
	repOn, tOn := run(true)
	fmt.Printf("wall %v, sustained %.2f Gflop/s (model flops)\n",
		tOn.Round(time.Millisecond), repOn.Result.Perf.SustainedFlops/1e9)

	factor := repOn.SolverTime.Seconds() / repOff.SolverTime.Seconds()
	fmt.Printf("\nattenuation run-time factor: %.2fx (paper: 1.8x with an almost imperceptible Tflops drop)\n", factor)

	fmt.Println("\npeak displacement per station (elastic vs anelastic):")
	for _, st := range sts[:6] {
		a := peak(repOff.Result.Seismograms[st.Name])
		b := peak(repOn.Result.Seismograms[st.Name])
		ratio := 0.0
		if a > 0 {
			ratio = b / a
		}
		fmt.Printf("  %-5s %.3e m -> %.3e m  (x%.2f)\n", st.Name, a, b, ratio)
	}

	if err := core.WriteSeismograms("argentina_output", repOn.Result); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanelastic seismograms written to argentina_output/")
}

func peak(sg *solver.Seismogram) float64 {
	if sg == nil {
		return 0
	}
	p := 0.0
	for i := range sg.X {
		m := math.Abs(float64(sg.X[i])) + math.Abs(float64(sg.Y[i])) + math.Abs(float64(sg.Z[i]))
		if m > p {
			p = m
		}
	}
	return p
}
