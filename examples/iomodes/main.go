// IOModes: the section 4.1 experiment — run the same simulation through
// the legacy two-program pipeline (mesher writes up to 51 files per
// core, solver reads them back) and through the merged in-memory
// application, verify the seismograms are bit-identical, and compare
// the I/O cost.
//
//	go run ./examples/iomodes
package main

import (
	"fmt"
	"log"
	"os"

	"specglobe/internal/core"
	"specglobe/internal/earthmodel"
	"specglobe/internal/meshio"
	"specglobe/internal/perfmodel"
	"specglobe/internal/stations"
)

func main() {
	log.SetFlags(0)

	model := earthmodel.NewHomogeneous(6371e3, earthmodel.Material{
		Rho: 5000, Vp: 10000, Vs: 5500, Qmu: 300, Qkappa: 57823,
	})
	model.ICBRadius = 1221.5e3
	model.CMBRadius = 3480e3

	base := core.Config{
		NexXi: 8, NProcXi: 1,
		Model: model,
		Steps: 60,
		Event: core.Event{
			Name: "io-test", LatDeg: -27, LonDeg: -63, DepthM: 150e3,
			Mrr: 1e20, Mtt: -0.5e20, Mpp: -0.5e20, HalfDurationSec: 20,
		},
		Stations: stations.ReferenceStations()[:4],
	}

	fmt.Println("-- merged mode (mesher and solver in one program, section 4.1) --")
	merged, err := core.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handoff: %d files, %s stayed in memory; mesher %v, solver %v\n",
		merged.IO.Files, perfmodel.HumanBytes(float64(merged.IO.Bytes)),
		merged.MesherTime.Round(1e6), merged.SolverTime.Round(1e6))

	fmt.Println("\n-- legacy mode (per-core file database) --")
	dir, err := os.MkdirTemp("", "specglobe-iomodes-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	legacyCfg := base
	legacyCfg.LegacyIO = true
	legacyCfg.LegacyDir = dir
	legacy, err := core.Run(legacyCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d files (%d per core), %s written and read back\n",
		legacy.IO.Files, meshio.LegacyFilesPerCore,
		perfmodel.HumanBytes(float64(legacy.IO.Bytes)))

	// The file round trip is bit-exact, so physics must be identical.
	identical := true
	for name, a := range merged.Result.Seismograms {
		b := legacy.Result.Seismograms[name]
		for i := range a.X {
			if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] || a.Z[i] != b.Z[i] {
				identical = false
			}
		}
	}
	fmt.Printf("seismograms bit-identical across modes: %v\n", identical)

	fmt.Println("\n-- extrapolation to production scale --")
	perCore := float64(legacy.IO.Bytes) / float64(len(legacy.Globe.Locals))
	fmt.Printf("at 62,976 cores the legacy mode writes %.2fM files (paper: over 3.2 million)\n",
		float64(meshio.LegacyFilesPerCore)*62976/1e6)
	fmt.Printf("database bytes per core at this resolution: %s\n", perfmodel.HumanBytes(perCore))
	fmt.Println("the merged mode eliminates all of it — zero intermediate files.")
}
